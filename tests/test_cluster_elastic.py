"""Tests for the elastic GPU pool (§5.1 cloud allocation)."""

import pytest

from repro.cluster.elastic import ElasticClusterSimulator, ElasticConfig, GpuLease
from repro.cluster.scheduler import SchedulerConfig
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.workloads.arrivals import PoissonArrivals, RampProfile, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def engine_factory(gpu_id):
    return GpuEngine(
        gpu_id,
        SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
        EngineConfig(max_batch_size=4),
    )


def ramp_trace(duration=90.0, peak=6.0, seed=0):
    lengths = ShareGptLengths(max_prompt_len=64, max_response_len=32)
    arrivals = PoissonArrivals(
        rate=RampProfile(duration=duration, peak_rate=peak), duration=duration
    )
    return generate_trace(int(duration * peak) + 32, "skewed", seed=seed,
                          lengths=lengths, arrivals=arrivals)


def make_sim(max_gpus=6, **elastic_kwargs):
    cfg = ElasticConfig(
        min_gpus=1, max_gpus=max_gpus, provision_delay=5.0,
        release_idle_after=10.0, check_interval=2.0, **elastic_kwargs,
    )
    return ElasticClusterSimulator(
        engine_factory, cfg, SchedulerConfig(migration_interval=5.0)
    )


class TestElasticConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticConfig(min_gpus=0)
        with pytest.raises(ValueError):
            ElasticConfig(min_gpus=4, max_gpus=2)
        with pytest.raises(ValueError):
            ElasticConfig(check_interval=0)


class TestGpuLease:
    def test_open_lease_billed_to_horizon(self):
        lease = GpuLease(gpu_id="g", start=10.0)
        assert lease.seconds(horizon=25.0) == 15.0

    def test_closed_lease(self):
        lease = GpuLease(gpu_id="g", start=10.0, end=18.0)
        assert lease.seconds(horizon=100.0) == 8.0


class TestElasticSimulation:
    def test_scales_up_under_load_and_releases_after(self):
        sim = make_sim()
        result = sim.run_elastic(ramp_trace())
        assert result.scale_ups > 0
        assert result.peak_pool_size() > 1
        assert result.releases > 0  # ramp-down lets GPUs drain and release
        # All requests still finish.
        assert all(
            r.state is RequestState.FINISHED for r in result.base.requests
        )

    def test_respects_max_gpus(self):
        sim = make_sim(max_gpus=2)
        result = sim.run_elastic(ramp_trace(peak=10.0))
        assert result.peak_pool_size() <= 2

    def test_never_releases_below_min(self):
        sim = make_sim()
        result = sim.run_elastic(ramp_trace())
        # The last lease(s) remain open: at least min_gpus GPUs at the end.
        open_leases = [l for l in result.leases if l.end is None]
        assert len(open_leases) >= 1

    def test_elastic_cheaper_than_static_peak_pool(self):
        trace = ramp_trace(duration=120.0, peak=8.0)
        elastic = make_sim(max_gpus=6).run_elastic(trace)
        static_gpu_seconds = 6 * elastic.base.duration
        assert elastic.gpu_seconds() < 0.8 * static_gpu_seconds

    def test_throughput_not_destroyed_by_elasticity(self):
        # Compared to a static max-size pool, elasticity may queue requests
        # during provisioning but must finish the trace in similar time.
        from repro.cluster.simulator import ClusterSimulator

        trace = ramp_trace(duration=90.0, peak=5.0, seed=3)
        elastic = make_sim().run_elastic(trace)
        static = ClusterSimulator(
            [engine_factory(f"s{i}") for i in range(6)],
            SchedulerConfig(migration_interval=5.0),
        ).run(trace)
        assert elastic.base.finished_requests == static.finished_requests
        assert elastic.base.duration < 2.0 * static.duration

    def test_deterministic(self):
        r1 = make_sim().run_elastic(ramp_trace(seed=4))
        r2 = make_sim().run_elastic(ramp_trace(seed=4))
        assert r1.gpu_seconds() == r2.gpu_seconds()
        assert r1.scale_ups == r2.scale_ups


class TestElasticEdgeCases:
    def test_shrink_never_releases_a_busy_engine(self):
        from repro.runtime.request import Request
        from repro.workloads.trace import RequestSpec

        sim = make_sim()
        # Land a second GPU the way a provision does, then park a request
        # on it and leave a *stale* idle mark — the is_idle guard, not the
        # bookkeeping, must be what keeps a busy engine in the pool.
        sim._provisioning += 1
        sim._activate_gpu(0.0)
        assert set(sim.scheduler.engines) == {"gpu00", "gpu01"}
        req = Request(spec=RequestSpec("r", "lora-0", 0.0, 8, 4))
        sim.scheduler.engines["gpu01"].add_request(req, 0.0)
        sim._idle_since["gpu01"] = 0.0
        sim._release_idle(100.0)
        assert "gpu01" in sim.scheduler.engines, "released a busy engine"
        # The genuinely idle gpu00 was released (pool floor is 1).
        assert "gpu00" not in sim.scheduler.engines

    def test_grow_lands_during_consolidation_churn(self):
        # Aggressive consolidation so migrations overlap the provisioning
        # window: a GPU landing mid-migration drains the queue without
        # double-placing or stranding the re-prefilling movers.
        cfg = ElasticConfig(
            min_gpus=1, max_gpus=4, provision_delay=3.0,
            release_idle_after=30.0, check_interval=1.0,
        )
        sim = ElasticClusterSimulator(
            engine_factory, cfg, SchedulerConfig(migration_interval=1.0)
        )
        result = sim.run_elastic(ramp_trace(duration=60.0, peak=6.0, seed=1))
        assert result.scale_ups > 0
        assert result.base.num_migrations > 0
        for req in result.base.requests:
            assert req.state is RequestState.FINISHED
            assert req.num_generated == req.spec.response_len

    def test_lease_accounting_across_back_to_back_scale_events(self):
        cfg = ElasticConfig(
            min_gpus=1, max_gpus=6, provision_delay=1.0,
            release_idle_after=2.0, check_interval=1.0,
        )
        sim = ElasticClusterSimulator(engine_factory, cfg)
        result = sim.run_elastic(ramp_trace(duration=60.0, peak=8.0, seed=2))
        assert result.scale_ups > 0 and result.releases > 0
        # GPU ids are never recycled: each lease is a distinct billing
        # window even when releases and provisions alternate tightly.
        ids = [lease.gpu_id for lease in result.leases]
        assert len(ids) == len(set(ids))
        closed = [l for l in result.leases if l.end is not None]
        assert len(closed) == result.releases
        for lease in closed:
            assert lease.end > lease.start
        # Every scale-up paid its warm-up: no lease opens before the
        # provisioning delay has elapsed (the initial pool starts at 0).
        grown = [l for l in result.leases if l.gpu_id != "gpu00"]
        assert len(grown) == result.scale_ups
        for lease in grown:
            assert lease.start >= cfg.provision_delay
        assert result.gpu_seconds() == pytest.approx(
            sum(l.seconds(result.base.duration) for l in result.leases)
        )


class TestSchedulerPoolMembership:
    def test_add_remove_engine(self):
        from repro.cluster.scheduler import PunicaScheduler

        e0, e1 = engine_factory("a"), engine_factory("b")
        sched = PunicaScheduler([e0])
        sched.add_engine(e1)
        assert set(sched.engines) == {"a", "b"}
        sched.remove_engine("b")
        assert set(sched.engines) == {"a"}

    def test_cannot_remove_busy_or_last(self):
        from repro.cluster.scheduler import PunicaScheduler
        from repro.runtime.request import Request
        from repro.workloads.trace import RequestSpec

        e0, e1 = engine_factory("a"), engine_factory("b")
        sched = PunicaScheduler([e0, e1])
        req = Request(spec=RequestSpec("r", "m", 0.0, 8, 4))
        e1.add_request(req, 0.0)
        with pytest.raises(RuntimeError):
            sched.remove_engine("b")
        sched.remove_engine("a")
        with pytest.raises(RuntimeError):
            sched.remove_engine("b")

    def test_duplicate_add_rejected(self):
        from repro.cluster.scheduler import PunicaScheduler

        e0 = engine_factory("a")
        sched = PunicaScheduler([e0])
        with pytest.raises(ValueError):
            sched.add_engine(engine_factory("a"))
