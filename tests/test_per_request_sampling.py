"""Tests for per-request sampler overrides in functional serving."""

import numpy as np

from repro.core.lora import LoraRegistry, random_lora_weights
from repro.models.config import tiny_config
from repro.models.weights import random_llama_weights
from repro.runtime.backend import NumpyBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request
from repro.runtime.sampler import GreedySampler, TemperatureSampler
from repro.runtime.serve import serve_requests
from repro.workloads.trace import RequestSpec

CFG = tiny_config(hidden_size=32, num_layers=1, num_heads=4, vocab_size=64)


def make_engine(seed=0):
    weights = random_llama_weights(CFG, seed=seed)
    registry = LoraRegistry()
    registry.register(random_lora_weights("m", CFG.num_layers, CFG.proj_dims(), 4, seed=1))
    backend = NumpyBackend(weights, registry, total_pages=64, page_size=4, lora_rank=4)
    return GpuEngine("gpu0", backend, EngineConfig(max_batch_size=4))


def make_request(rid, sampler=None, seed=0, response=6):
    rng = np.random.default_rng(seed)
    return Request(
        spec=RequestSpec(rid, "m", 0.0, 5, response),
        prompt_tokens=[int(t) for t in rng.integers(0, CFG.vocab_size, size=5)],
        sampler=sampler,
    )


class TestPerRequestSampling:
    def test_default_sampler_used_when_unset(self):
        engine = make_engine()
        a = make_request("a")
        serve_requests(engine, [a])
        engine2 = make_engine()
        b = make_request("b")  # same prompt/seed, default greedy
        serve_requests(engine2, [b])
        assert a.generated_tokens == b.generated_tokens

    def test_high_temperature_diverges_from_greedy(self):
        greedy_engine = make_engine()
        greedy = make_request("g")
        serve_requests(greedy_engine, [greedy])

        hot_engine = make_engine()
        hot = make_request("h", sampler=TemperatureSampler(temperature=50.0, seed=3),
                           response=12)
        serve_requests(hot_engine, [hot])
        assert hot.generated_tokens[: len(greedy.generated_tokens)] != greedy.generated_tokens

    def test_mixed_samplers_in_one_batch(self):
        engine = make_engine()
        greedy = make_request("g", sampler=GreedySampler(), seed=4)
        hot = make_request("h", sampler=TemperatureSampler(temperature=20.0, seed=5), seed=6)
        result = serve_requests(engine, [greedy, hot])
        assert result.requests_finished == 2
        # The greedy request's stream matches a solo greedy run.
        solo_engine = make_engine()
        solo = make_request("s", seed=4)
        serve_requests(solo_engine, [solo])
        assert greedy.generated_tokens == solo.generated_tokens
