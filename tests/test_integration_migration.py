"""Integration tests: request migration preserves generation exactly.

The paper's migration (§5.3) cancels a request on GPU 1 and re-prefills
its prompt *plus all previously generated tokens* on GPU 2. With greedy
decoding the recomputed KvCache must lead to the identical continuation —
these tests prove that end to end with the functional NumPy backend, both
for a hand-driven two-engine migration and under the full cluster
simulator with memory-pressure evictions.
"""

import numpy as np
import pytest

from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.core.lora import LoraRegistry, random_lora_weights
from repro.models.config import tiny_config
from repro.models.llama import reference_forward_full
from repro.models.weights import random_llama_weights
from repro.runtime.backend import NumpyBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import RequestSpec, generate_trace

CFG = tiny_config(hidden_size=32, num_layers=2, num_heads=4, vocab_size=64)


@pytest.fixture(scope="module")
def weights():
    return random_llama_weights(CFG, seed=0)


@pytest.fixture(scope="module")
def registry():
    reg = LoraRegistry()
    for i in range(3):
        reg.register(
            random_lora_weights(f"lora-{i}", CFG.num_layers, CFG.proj_dims(), 4, seed=30 + i)
        )
    return reg


def functional_engine(weights, registry, gpu_id="gpu0", pages=128):
    backend = NumpyBackend(weights, registry, total_pages=pages, page_size=4, lora_rank=4)
    return GpuEngine(gpu_id, backend, EngineConfig(max_batch_size=8))


def drive(engine, now=0.0, steps=1):
    for _ in range(steps):
        report = engine.step(now)
        if report is None:
            now += 1e-3
            continue
        now = report.end
    return now


def make_request(rid, lora, prompt_tokens, response):
    return Request(
        spec=RequestSpec(
            request_id=rid, lora_id=lora, arrival_time=0.0,
            prompt_len=len(prompt_tokens), response_len=response,
        ),
        prompt_tokens=list(prompt_tokens),
    )


class TestManualMigration:
    def test_migrated_stream_equals_unmigrated(self, weights, registry):
        rng = np.random.default_rng(5)
        prompt = [int(t) for t in rng.integers(0, CFG.vocab_size, size=6)]

        # Reference run: request completes on one GPU, no migration.
        ref = make_request("ref", "lora-0", prompt, response=8)
        engine = functional_engine(weights, registry)
        engine.add_request(ref, 0.0)
        now = drive(engine, steps=40)
        assert ref.state is RequestState.FINISHED

        # Migrated run: same request, moved between engines after 3 tokens.
        req = make_request("mig", "lora-0", prompt, response=8)
        src = functional_engine(weights, registry, "gpu-src")
        dst = functional_engine(weights, registry, "gpu-dst")
        src.add_request(req, 0.0)
        now = 0.0
        while req.num_generated < 3:
            report = src.step(now)
            now = report.end if report else now + 1e-3
        src.cancel("mig", requeue=True)  # §5.3 step 1: cancel on GPU 1
        assert req.needs_prefill and req.kv_len == 0
        dst.add_request(req, now)  # §5.3 step 2: add to GPU 2
        while req.state is not RequestState.FINISHED:
            report = dst.step(now)
            now = report.end if report else now + 1e-3

        assert req.generated_tokens == ref.generated_tokens
        assert req.num_migrations == 1

    def test_double_migration_still_exact(self, weights, registry):
        rng = np.random.default_rng(9)
        prompt = [int(t) for t in rng.integers(0, CFG.vocab_size, size=4)]
        ref = make_request("ref", "lora-1", prompt, response=6)
        engine = functional_engine(weights, registry)
        engine.add_request(ref, 0.0)
        drive(engine, steps=30)

        req = make_request("mig2", "lora-1", prompt, response=6)
        engines = [functional_engine(weights, registry, f"g{i}") for i in range(3)]
        engines[0].add_request(req, 0.0)
        now, hop = 0.0, 0
        while req.state is not RequestState.FINISHED:
            report = engines[hop].step(now)
            now = report.end if report else now + 1e-3
            if req.num_generated in (2, 4) and req.state is RequestState.RUNNING:
                if req.num_migrations < req.num_generated // 2:
                    engines[hop].cancel(req.request_id, requeue=True)
                    hop += 1
                    engines[hop].add_request(req, now)
        assert req.generated_tokens == ref.generated_tokens
        assert req.num_migrations == 2


class TestFunctionalCluster:
    def make_cluster(self, weights, registry, n=2, pages=32):
        engines = [
            GpuEngine(
                f"gpu{i}",
                NumpyBackend(weights, registry, total_pages=pages, page_size=4, lora_rank=4),
                EngineConfig(max_batch_size=4),
            )
            for i in range(n)
        ]
        return ClusterSimulator(engines, SchedulerConfig(migration_interval=0.05))

    def test_cluster_serves_functional_backend(self, weights, registry):
        lengths = ShareGptLengths(max_prompt_len=6, max_response_len=5)
        trace = generate_trace(6, "uniform", seed=2, lengths=lengths)
        sim = self.make_cluster(weights, registry)
        reqs = requests_from_trace(trace, with_prompt_tokens=True, vocab_size=CFG.vocab_size)
        for r, spec in zip(reqs, trace):
            sim._requests[r.request_id] = r
            sim.loop.schedule(spec.arrival_time, sim._make_arrival(r))
        sim.loop.run()
        assert all(r.state is RequestState.FINISHED for r in reqs)
        # Each request's stream must match a solo merged-weight recompute.
        for req in reqs:
            history = list(req.prompt_tokens)
            for tok in req.generated_tokens:
                logits = reference_forward_full(
                    weights, np.asarray(history), registry, req.lora_id
                )
                assert tok == int(np.argmax(logits))
                history.append(tok)

    def test_eviction_under_memory_pressure_is_exact(self, weights, registry):
        # One tiny-KvCache engine: long requests force evictions; the
        # re-prefilled continuation must still be greedy-exact.
        backend = NumpyBackend(weights, registry, total_pages=10, page_size=2, lora_rank=4)
        engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=3))
        lengths = ShareGptLengths(min_len=4, max_prompt_len=6, max_response_len=8)
        trace = generate_trace(3, "distinct", seed=4, lengths=lengths)
        reqs = requests_from_trace(trace, with_prompt_tokens=True, vocab_size=CFG.vocab_size)
        result = serve_requests(engine, reqs)
        assert result.requests_finished == 3
        assert any(r.num_migrations > 0 for r in reqs)  # pressure did evict
        for req in reqs:
            history = list(req.prompt_tokens)
            for tok in req.generated_tokens:
                logits = reference_forward_full(
                    weights, np.asarray(history), registry, req.lora_id
                )
                assert tok == int(np.argmax(logits))
                history.append(tok)
