"""Stateful property test: the engine under arbitrary add/step/cancel traffic.

Invariants checked after every action:

* the working set never exceeds the max batch size;
* the backend page allocator's view of each request's sequence length
  equals the engine's ``kv_len`` bookkeeping (no drift);
* no request generates more tokens than its response length;
* FINISHED/CANCELLED requests hold no KvCache pages;
* page accounting balances exactly across admissions, evictions,
  cancellations and completions.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.kvcache.page import pages_needed
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.workloads.trace import RequestSpec

MAX_BATCH = 4
PAGE_SIZE = 16
POOL_TOKENS = 40 * PAGE_SIZE  # deliberately tight: exercises eviction


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.backend = SimulatedBackend(
            LLAMA2_7B,
            kv_capacity_bytes=POOL_TOKENS * LLAMA2_7B.kv_bytes_per_token(),
            page_size=PAGE_SIZE,
            step_overhead=0.0,
        )
        self.engine = GpuEngine(
            "gpu0", self.backend, EngineConfig(max_batch_size=MAX_BATCH)
        )
        self.now = 0.0
        self.requests: dict[str, Request] = {}
        self.counter = 0

    @rule(prompt=st.integers(1, 100), response=st.integers(1, 60),
          lora=st.sampled_from(["a", "b", "c"]))
    def add(self, prompt, response, lora):
        rid = f"r{self.counter}"
        self.counter += 1
        req = Request(
            spec=RequestSpec(
                request_id=rid, lora_id=lora, arrival_time=self.now,
                prompt_len=prompt, response_len=response,
            )
        )
        if self.engine.can_accept(req):
            self.engine.add_request(req, self.now)
            self.requests[rid] = req
        else:
            with pytest.raises(RuntimeError):
                self.engine.add_request(req, self.now)

    @rule()
    def step(self):
        report = self.engine.step(self.now)
        if report is None:
            self.now += 2e-3  # let any LoRA load land
        else:
            self.now = max(self.now, report.end)
            assert report.batch_size <= MAX_BATCH
            assert report.num_prefill <= 1

    @precondition(lambda self: any(
        r.state is RequestState.RUNNING for r in self.requests.values()
    ))
    @rule(requeue=st.booleans(), data=st.data())
    def cancel(self, requeue, data):
        running = sorted(
            rid for rid, r in self.requests.items()
            if r.state is RequestState.RUNNING and self.engine.has_request(rid)
        )
        if not running:
            return
        rid = data.draw(st.sampled_from(running))
        self.engine.cancel(rid, requeue=requeue)
        if not requeue:
            del self.requests[rid]

    @precondition(lambda self: any(
        r.state is RequestState.QUEUED and r.num_migrations > 0
        for r in self.requests.values()
    ))
    @rule()
    def readmit_evicted(self):
        for rid, req in sorted(self.requests.items()):
            if req.state is RequestState.QUEUED and not self.engine.has_request(rid):
                if self.engine.can_accept(req):
                    self.engine.add_request(req, self.now)
                break

    # ------------------------------------------------------------------
    @invariant()
    def batch_bound(self):
        assert self.engine.working_set_size <= MAX_BATCH

    @invariant()
    def kv_accounting_consistent(self):
        allocator = self.backend.kv.allocator
        expected_pages = 0
        for req in self.engine.all_requests():
            rid = req.request_id
            if req.needs_prefill:
                # Pending: no pages allocated yet.
                assert rid not in allocator
            else:
                assert allocator.seq_len(rid) == req.kv_len
                expected_pages += pages_needed(req.kv_len, PAGE_SIZE)
        assert allocator.used_pages == expected_pages

    @invariant()
    def token_limits_respected(self):
        for req in self.requests.values():
            assert req.num_generated <= req.spec.response_len

    @invariant()
    def finished_requests_hold_nothing(self):
        allocator = self.backend.kv.allocator
        for rid, req in self.requests.items():
            if req.state in (RequestState.FINISHED, RequestState.CANCELLED):
                assert rid not in allocator
                assert not self.engine.has_request(rid)


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
