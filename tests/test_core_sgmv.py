"""Tests for the SGMV operators: numpy implementation vs gold-standard reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import segments_from_sizes
from repro.core.sgmv import (
    sgmv_expand,
    sgmv_expand_reference,
    sgmv_shrink,
    sgmv_shrink_reference,
)
from repro.utils.rng import new_rng


def make_case(sizes, h_in=32, rank=4, seed=0):
    rng = new_rng(seed)
    seg = segments_from_sizes(sizes)
    bs = int(seg[-1])
    n = len(sizes)
    x = rng.standard_normal((bs, h_in))
    wa = rng.standard_normal((n, h_in, rank))
    return seg, x, wa


class TestSgmvShrink:
    def test_matches_reference(self):
        seg, x, wa = make_case([2, 3, 1])
        v1 = np.zeros((x.shape[0], wa.shape[2]))
        v2 = np.zeros_like(v1)
        sgmv_shrink(v1, x, wa, seg)
        sgmv_shrink_reference(v2, x, wa, seg)
        np.testing.assert_allclose(v1, v2, rtol=1e-12)

    def test_accumulates_not_overwrites(self):
        seg, x, wa = make_case([2, 2])
        v = np.ones((4, wa.shape[2]))
        expected = 1.0 + np.vstack([x[:2] @ wa[0], x[2:] @ wa[1]])
        sgmv_shrink(v, x, wa, seg)
        np.testing.assert_allclose(v, expected, rtol=1e-12)

    def test_segment_isolation(self):
        # Changing one model's weights must not affect other segments.
        seg, x, wa = make_case([2, 2])
        v_base = sgmv_shrink(np.zeros((4, 4)), x, wa.copy(), seg)
        wa2 = wa.copy()
        wa2[1] *= 5.0
        v_mod = sgmv_shrink(np.zeros((4, 4)), x, wa2, seg)
        np.testing.assert_array_equal(v_base[:2], v_mod[:2])
        assert not np.allclose(v_base[2:], v_mod[2:])

    def test_returns_same_array(self):
        seg, x, wa = make_case([1, 1])
        v = np.zeros((2, 4))
        assert sgmv_shrink(v, x, wa, seg) is v

    def test_shape_errors(self):
        seg, x, wa = make_case([2, 2])
        with pytest.raises(ValueError, match="models"):
            sgmv_shrink(np.zeros((4, 4)), x, wa[:1], seg)
        with pytest.raises(ValueError, match="feature"):
            sgmv_shrink(np.zeros((4, 4)), x[:, :8], wa, seg)
        with pytest.raises(ValueError, match="output shape"):
            sgmv_shrink(np.zeros((4, 5)), x, wa, seg)


class TestSgmvExpand:
    def test_matches_reference(self):
        rng = new_rng(1)
        seg = segments_from_sizes([1, 4, 2])
        v = rng.standard_normal((7, 4))
        wb = rng.standard_normal((3, 4, 32))
        y1 = np.zeros((7, 32))
        y2 = np.zeros_like(y1)
        sgmv_expand(y1, v, wb, seg)
        sgmv_expand_reference(y2, v, wb, seg)
        np.testing.assert_allclose(y1, y2, rtol=1e-12)

    def test_accumulates_into_backbone_output(self):
        rng = new_rng(2)
        seg = segments_from_sizes([3])
        v = rng.standard_normal((3, 4))
        wb = rng.standard_normal((1, 4, 16))
        backbone = rng.standard_normal((3, 16))
        y = backbone.copy()
        sgmv_expand(y, v, wb, seg)
        np.testing.assert_allclose(y, backbone + v @ wb[0], rtol=1e-12)


def pure_python_sgmv(x, weights, seg):
    """Scalar-loop oracle: no numpy arithmetic beyond element access.

    Computes ``y[r, o] = sum_k x[r, k] * w[i, k, o]`` for every row ``r``
    of segment ``i`` with plain Python floats — the slowest, most obvious
    implementation, used to cross-check both the optimized path and the
    per-row reference.
    """
    batch, h_in = x.shape
    h_out = weights.shape[2]
    y = [[0.0] * h_out for _ in range(batch)]
    for i in range(len(seg) - 1):
        for row in range(int(seg[i]), int(seg[i + 1])):
            for o in range(h_out):
                acc = 0.0
                for k in range(h_in):
                    acc += float(x[row, k]) * float(weights[i, k, o])
                y[row][o] = acc
    return np.asarray(y, dtype=float).reshape(batch, h_out)


def all_segment_layouts(batch, max_segments):
    """Every composition of ``batch`` into 1..max_segments nonneg parts —
    includes empty segments in every position."""
    layouts = []

    def rec(prefix, remaining, slots):
        if slots == 1:
            layouts.append(prefix + [remaining])
            return
        for take in range(remaining + 1):
            rec(prefix + [take], remaining - take, slots - 1)

    for n in range(1, max_segments + 1):
        rec([], batch, n)
    return layouts


def seg_with_empties(sizes):
    """Cumulative boundaries allowing zero-sized segments."""
    seg = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(sizes, dtype=np.int64), out=seg[1:])
    return seg


class TestSgmvExhaustiveSmallCases:
    """Every segment layout for tiny batches, numpy vs the scalar oracle.

    Covers the degenerate shapes the kernel scheduler must survive:
    empty segments (a LoRA model with no requests this invocation),
    rank-0 adapters (LoRA disabled per-model), and single-request batches.
    """

    def test_exhaustive_layouts_shrink_and_expand(self):
        rng = new_rng(123)
        for batch in (1, 2, 3, 4):
            for sizes in all_segment_layouts(batch, max_segments=3):
                seg = seg_with_empties(sizes)
                n = len(sizes)
                for h_in, rank in ((1, 1), (3, 2)):
                    x = rng.standard_normal((batch, h_in))
                    wa = rng.standard_normal((n, h_in, rank))
                    expected = pure_python_sgmv(x, wa, seg)
                    got = sgmv_shrink(np.zeros((batch, rank)), x, wa, seg)
                    np.testing.assert_allclose(
                        got, expected, rtol=1e-10, atol=1e-12,
                        err_msg=f"shrink sizes={sizes} h={h_in} r={rank}",
                    )
                    ref = sgmv_shrink_reference(
                        np.zeros((batch, rank)), x, wa, seg
                    )
                    np.testing.assert_allclose(
                        ref, expected, rtol=1e-10, atol=1e-12,
                        err_msg=f"reference sizes={sizes} h={h_in} r={rank}",
                    )
                    v = rng.standard_normal((batch, rank))
                    wb = rng.standard_normal((n, rank, h_in))
                    expected_y = pure_python_sgmv(v, wb, seg)
                    got_y = sgmv_expand(np.zeros((batch, h_in)), v, wb, seg)
                    np.testing.assert_allclose(
                        got_y, expected_y, rtol=1e-10, atol=1e-12,
                        err_msg=f"expand sizes={sizes} h={h_in} r={rank}",
                    )

    def test_empty_segments_leave_rows_untouched(self):
        # [2, 0, 1]: model 1 has no requests; its weights must not leak.
        seg = seg_with_empties([2, 0, 1])
        rng = new_rng(5)
        x = rng.standard_normal((3, 4))
        wa = rng.standard_normal((3, 4, 2))
        poisoned = wa.copy()
        poisoned[1] = np.nan  # would contaminate output if ever touched
        out = sgmv_shrink(np.zeros((3, 2)), x, poisoned, seg)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(
            out, sgmv_shrink(np.zeros((3, 2)), x, wa, seg), rtol=1e-12
        )

    def test_all_segments_empty(self):
        seg = seg_with_empties([0, 0])
        x = np.zeros((0, 4))
        wa = np.ones((2, 4, 3))
        out = sgmv_shrink(np.zeros((0, 3)), x, wa, seg)
        assert out.shape == (0, 3)

    def test_rank_zero_adapters(self):
        # rank 0: shrink produces (batch, 0); expand adds exactly nothing.
        seg = seg_with_empties([2, 1])
        rng = new_rng(6)
        x = rng.standard_normal((3, 4))
        wa = rng.standard_normal((2, 4, 0))
        v = sgmv_shrink(np.zeros((3, 0)), x, wa, seg)
        assert v.shape == (3, 0)
        wb = rng.standard_normal((2, 0, 4))
        backbone = rng.standard_normal((3, 4))
        y = backbone.copy()
        sgmv_expand(y, v, wb, seg)
        np.testing.assert_array_equal(y, backbone)

    def test_single_request_batch(self):
        seg = seg_with_empties([1])
        rng = new_rng(7)
        x = rng.standard_normal((1, 8))
        wa = rng.standard_normal((1, 8, 4))
        got = sgmv_shrink(np.zeros((1, 4)), x, wa, seg)
        np.testing.assert_allclose(
            got, pure_python_sgmv(x, wa, seg), rtol=1e-10, atol=1e-12
        )


@st.composite
def sgmv_layout_with_empties(draw):
    sizes = draw(st.lists(st.integers(0, 4), min_size=1, max_size=6))
    h_in = draw(st.integers(1, 16))
    rank = draw(st.integers(0, 6))
    seed = draw(st.integers(0, 2**31 - 1))
    return sizes, h_in, rank, seed


class TestSgmvRandomizedLayouts:
    @given(sgmv_layout_with_empties())
    @settings(max_examples=60, deadline=None)
    def test_shrink_matches_scalar_oracle(self, problem):
        sizes, h_in, rank, seed = problem
        rng = new_rng(seed)
        seg = seg_with_empties(sizes)
        batch, n = int(seg[-1]), len(sizes)
        x = rng.standard_normal((batch, h_in))
        wa = rng.standard_normal((n, h_in, rank))
        got = sgmv_shrink(np.zeros((batch, rank)), x, wa, seg)
        np.testing.assert_allclose(
            got, pure_python_sgmv(x, wa, seg), rtol=1e-9, atol=1e-11
        )

    @given(sgmv_layout_with_empties())
    @settings(max_examples=60, deadline=None)
    def test_expand_matches_scalar_oracle(self, problem):
        sizes, h_in, rank, seed = problem
        rng = new_rng(seed)
        seg = seg_with_empties(sizes)
        batch, n = int(seg[-1]), len(sizes)
        v = rng.standard_normal((batch, rank))
        wb = rng.standard_normal((n, rank, h_in))
        got = sgmv_expand(np.zeros((batch, h_in)), v, wb, seg)
        np.testing.assert_allclose(
            got, pure_python_sgmv(v, wb, seg), rtol=1e-9, atol=1e-11
        )


@st.composite
def sgmv_problem(draw):
    sizes = draw(st.lists(st.integers(1, 6), min_size=1, max_size=8))
    h_in = draw(st.integers(1, 24))
    rank = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    return sizes, h_in, rank, seed


class TestSgmvProperties:
    @given(sgmv_problem())
    @settings(max_examples=60, deadline=None)
    def test_shrink_equals_reference(self, problem):
        sizes, h_in, rank, seed = problem
        seg, x, wa = make_case(sizes, h_in=h_in, rank=rank, seed=seed)
        v1 = np.zeros((x.shape[0], rank))
        v2 = np.zeros_like(v1)
        sgmv_shrink(v1, x, wa, seg)
        sgmv_shrink_reference(v2, x, wa, seg)
        np.testing.assert_allclose(v1, v2, rtol=1e-10, atol=1e-12)

    @given(sgmv_problem())
    @settings(max_examples=60, deadline=None)
    def test_expand_equals_reference(self, problem):
        sizes, h_in, rank, seed = problem
        rng = new_rng(seed)
        seg = segments_from_sizes(sizes)
        bs, n = int(seg[-1]), len(sizes)
        v = rng.standard_normal((bs, rank))
        wb = rng.standard_normal((n, rank, h_in))
        y1 = np.zeros((bs, h_in))
        y2 = np.zeros_like(y1)
        sgmv_expand(y1, v, wb, seg)
        sgmv_expand_reference(y2, v, wb, seg)
        np.testing.assert_allclose(y1, y2, rtol=1e-10, atol=1e-12)

    @given(sgmv_problem())
    @settings(max_examples=40, deadline=None)
    def test_shrink_equals_per_segment_matmul(self, problem):
        sizes, h_in, rank, seed = problem
        seg, x, wa = make_case(sizes, h_in=h_in, rank=rank, seed=seed)
        v = np.zeros((x.shape[0], rank))
        sgmv_shrink(v, x, wa, seg)
        expected = np.vstack(
            [x[int(seg[i]) : int(seg[i + 1])] @ wa[i] for i in range(len(sizes))]
        )
        np.testing.assert_allclose(v, expected, rtol=1e-10, atol=1e-12)
