"""Tests for the SGMV operators: numpy implementation vs gold-standard reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import segments_from_sizes
from repro.core.sgmv import (
    sgmv_expand,
    sgmv_expand_reference,
    sgmv_shrink,
    sgmv_shrink_reference,
)
from repro.utils.rng import new_rng


def make_case(sizes, h_in=32, rank=4, seed=0):
    rng = new_rng(seed)
    seg = segments_from_sizes(sizes)
    bs = int(seg[-1])
    n = len(sizes)
    x = rng.standard_normal((bs, h_in))
    wa = rng.standard_normal((n, h_in, rank))
    return seg, x, wa


class TestSgmvShrink:
    def test_matches_reference(self):
        seg, x, wa = make_case([2, 3, 1])
        v1 = np.zeros((x.shape[0], wa.shape[2]))
        v2 = np.zeros_like(v1)
        sgmv_shrink(v1, x, wa, seg)
        sgmv_shrink_reference(v2, x, wa, seg)
        np.testing.assert_allclose(v1, v2, rtol=1e-12)

    def test_accumulates_not_overwrites(self):
        seg, x, wa = make_case([2, 2])
        v = np.ones((4, wa.shape[2]))
        expected = 1.0 + np.vstack([x[:2] @ wa[0], x[2:] @ wa[1]])
        sgmv_shrink(v, x, wa, seg)
        np.testing.assert_allclose(v, expected, rtol=1e-12)

    def test_segment_isolation(self):
        # Changing one model's weights must not affect other segments.
        seg, x, wa = make_case([2, 2])
        v_base = sgmv_shrink(np.zeros((4, 4)), x, wa.copy(), seg)
        wa2 = wa.copy()
        wa2[1] *= 5.0
        v_mod = sgmv_shrink(np.zeros((4, 4)), x, wa2, seg)
        np.testing.assert_array_equal(v_base[:2], v_mod[:2])
        assert not np.allclose(v_base[2:], v_mod[2:])

    def test_returns_same_array(self):
        seg, x, wa = make_case([1, 1])
        v = np.zeros((2, 4))
        assert sgmv_shrink(v, x, wa, seg) is v

    def test_shape_errors(self):
        seg, x, wa = make_case([2, 2])
        with pytest.raises(ValueError, match="models"):
            sgmv_shrink(np.zeros((4, 4)), x, wa[:1], seg)
        with pytest.raises(ValueError, match="feature"):
            sgmv_shrink(np.zeros((4, 4)), x[:, :8], wa, seg)
        with pytest.raises(ValueError, match="output shape"):
            sgmv_shrink(np.zeros((4, 5)), x, wa, seg)


class TestSgmvExpand:
    def test_matches_reference(self):
        rng = new_rng(1)
        seg = segments_from_sizes([1, 4, 2])
        v = rng.standard_normal((7, 4))
        wb = rng.standard_normal((3, 4, 32))
        y1 = np.zeros((7, 32))
        y2 = np.zeros_like(y1)
        sgmv_expand(y1, v, wb, seg)
        sgmv_expand_reference(y2, v, wb, seg)
        np.testing.assert_allclose(y1, y2, rtol=1e-12)

    def test_accumulates_into_backbone_output(self):
        rng = new_rng(2)
        seg = segments_from_sizes([3])
        v = rng.standard_normal((3, 4))
        wb = rng.standard_normal((1, 4, 16))
        backbone = rng.standard_normal((3, 16))
        y = backbone.copy()
        sgmv_expand(y, v, wb, seg)
        np.testing.assert_allclose(y, backbone + v @ wb[0], rtol=1e-12)


@st.composite
def sgmv_problem(draw):
    sizes = draw(st.lists(st.integers(1, 6), min_size=1, max_size=8))
    h_in = draw(st.integers(1, 24))
    rank = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    return sizes, h_in, rank, seed


class TestSgmvProperties:
    @given(sgmv_problem())
    @settings(max_examples=60, deadline=None)
    def test_shrink_equals_reference(self, problem):
        sizes, h_in, rank, seed = problem
        seg, x, wa = make_case(sizes, h_in=h_in, rank=rank, seed=seed)
        v1 = np.zeros((x.shape[0], rank))
        v2 = np.zeros_like(v1)
        sgmv_shrink(v1, x, wa, seg)
        sgmv_shrink_reference(v2, x, wa, seg)
        np.testing.assert_allclose(v1, v2, rtol=1e-10, atol=1e-12)

    @given(sgmv_problem())
    @settings(max_examples=60, deadline=None)
    def test_expand_equals_reference(self, problem):
        sizes, h_in, rank, seed = problem
        rng = new_rng(seed)
        seg = segments_from_sizes(sizes)
        bs, n = int(seg[-1]), len(sizes)
        v = rng.standard_normal((bs, rank))
        wb = rng.standard_normal((n, rank, h_in))
        y1 = np.zeros((bs, h_in))
        y2 = np.zeros_like(y1)
        sgmv_expand(y1, v, wb, seg)
        sgmv_expand_reference(y2, v, wb, seg)
        np.testing.assert_allclose(y1, y2, rtol=1e-10, atol=1e-12)

    @given(sgmv_problem())
    @settings(max_examples=40, deadline=None)
    def test_shrink_equals_per_segment_matmul(self, problem):
        sizes, h_in, rank, seed = problem
        seg, x, wa = make_case(sizes, h_in=h_in, rank=rank, seed=seed)
        v = np.zeros((x.shape[0], rank))
        sgmv_shrink(v, x, wa, seg)
        expected = np.vstack(
            [x[int(seg[i]) : int(seg[i + 1])] @ wa[i] for i in range(len(sizes))]
        )
        np.testing.assert_allclose(v, expected, rtol=1e-10, atol=1e-12)
