"""Tests for the human-readable result summaries."""

from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def short_trace(n=8):
    return generate_trace(
        n, "uniform", seed=0,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=8),
    )


class TestServeSummary:
    def test_summary_fields_present(self):
        engine = GpuEngine(
            "gpu0", SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=8)
        )
        result = serve_requests(engine, requests_from_trace(short_trace()))
        s = result.summary()
        assert "8 requests" in s
        assert "tok/s" in s
        assert "ms/tok" in s


class TestSimulationSummary:
    def test_summary_fields_present(self):
        engines = [
            GpuEngine(
                f"g{i}", SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=8)
            )
            for i in range(2)
        ]
        result = ClusterSimulator(engines).run(short_trace())
        s = result.summary()
        assert "8/8 requests" in s
        assert "migrations" in s
        assert "tok/s" in s
