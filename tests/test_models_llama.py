"""Functional correctness of the paged, batched, multi-LoRA Llama.

The central claim: running prefill + decode incrementally through the paged
KvCache with batched SGMV LoRA produces *exactly* the same logits as a
full-sequence recompute with merged weights (`reference_forward_full`).
"""

import numpy as np
import pytest

from repro.core.batch import BatchEntry, plan_batch
from repro.core.lora import LoraRegistry, random_lora_weights
from repro.kvcache.pool import PagedKvData
from repro.models.config import tiny_config
from repro.models.llama import (
    LlamaModel,
    TokenBatch,
    causal_attention,
    reference_forward_full,
    rmsnorm,
    rope_rotate,
    silu,
)
from repro.models.weights import random_llama_weights

CFG = tiny_config(hidden_size=32, num_layers=2, num_heads=4, vocab_size=64)
GQA_CFG = tiny_config(hidden_size=32, num_layers=2, num_heads=4, num_kv_heads=2, vocab_size=64)


def make_kv(cfg, pages=64, page_size=4):
    return PagedKvData(
        total_pages=pages,
        page_size=page_size,
        num_layers=cfg.num_layers,
        num_kv_heads=cfg.num_kv_heads,
        head_dim=cfg.head_dim,
        dtype=np.float64,
    )


def make_registry(cfg, model_ids, rank=4):
    reg = LoraRegistry()
    for i, mid in enumerate(model_ids):
        reg.register(
            random_lora_weights(mid, cfg.num_layers, cfg.proj_dims(), rank, seed=100 + i)
        )
    return reg


def prefill_entry(rid, lora, tokens):
    return BatchEntry(request_id=rid, lora_id=lora, num_tokens=tokens, is_prefill=True)


def decode_entry(rid, lora):
    return BatchEntry(request_id=rid, lora_id=lora, num_tokens=1, is_prefill=False)


class TestPrimitives:
    def test_rmsnorm_unit_scale(self):
        x = np.random.default_rng(0).standard_normal((5, 8))
        out = rmsnorm(x, np.ones(8))
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_silu_values(self):
        np.testing.assert_allclose(silu(np.array([0.0])), [0.0])
        assert silu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)

    def test_rope_preserves_norm(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((6, 2, 8))
        out = rope_rotate(x, np.arange(6), theta=10_000.0)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-10
        )

    def test_rope_position_zero_identity(self):
        x = np.random.default_rng(1).standard_normal((1, 2, 8))
        np.testing.assert_allclose(rope_rotate(x, np.zeros(1), 10_000.0), x, rtol=1e-12)

    def test_rope_relative_property(self):
        # Dot products between rotated q/k depend only on relative offset.
        rng = np.random.default_rng(2)
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 1, 8))
        def score(pq, pk):
            qr = rope_rotate(q, np.array([pq]), 10_000.0)
            kr = rope_rotate(k, np.array([pk]), 10_000.0)
            return float(np.sum(qr * kr))
        assert score(5, 3) == pytest.approx(score(12, 10), rel=1e-9)

    def test_rope_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_rotate(np.zeros((1, 1, 7)), np.zeros(1), 10_000.0)

    def test_causal_attention_masks_future(self):
        rng = np.random.default_rng(3)
        q = rng.standard_normal((2, 1, 4))
        k = rng.standard_normal((1, 5, 4))
        v = rng.standard_normal((1, 5, 4))
        out = causal_attention(q, k, v, q_positions=np.array([0, 4]))
        # Query at position 0 can only see key 0 -> output is exactly v[0].
        np.testing.assert_allclose(out[0, 0], v[0, 0], rtol=1e-10)


class TestIncrementalVsFullRecompute:
    @pytest.mark.parametrize("cfg", [CFG, GQA_CFG], ids=["mha", "gqa"])
    def test_single_request_generation(self, cfg):
        weights = random_llama_weights(cfg, seed=0)
        reg = make_registry(cfg, ["m0"])
        kv = make_kv(cfg)
        model = LlamaModel(weights, kv, reg)
        rng = np.random.default_rng(7)
        prompt = rng.integers(0, cfg.vocab_size, size=5)

        kv.allocate("r0", len(prompt))
        plan = plan_batch([prefill_entry("r0", "m0", len(prompt))])
        logits = model.forward(TokenBatch(plan, np.asarray(prompt), (0,)))
        history = list(prompt)
        for _ in range(3):
            expected = reference_forward_full(weights, np.asarray(history), reg, "m0")
            np.testing.assert_allclose(logits[0], expected, rtol=1e-8, atol=1e-10)
            nxt = int(np.argmax(logits[0]))
            history.append(nxt)
            kv.append_slot("r0")
            plan = plan_batch([decode_entry("r0", "m0")])
            logits = model.forward(
                TokenBatch(plan, np.asarray([nxt]), (len(history) - 1,))
            )

    def test_batching_does_not_change_results(self):
        # A request's logits are identical whether it decodes alone or
        # batched with unrelated requests on other LoRA models.
        weights = random_llama_weights(CFG, seed=1)
        reg = make_registry(CFG, ["a", "b"])
        rng = np.random.default_rng(11)
        prompt_a = rng.integers(0, CFG.vocab_size, size=4)
        prompt_b = rng.integers(0, CFG.vocab_size, size=6)

        # Solo run of request A.
        kv1 = make_kv(CFG)
        m1 = LlamaModel(weights, kv1, reg)
        kv1.allocate("A", 4)
        solo = m1.forward(
            TokenBatch(plan_batch([prefill_entry("A", "a", 4)]), prompt_a, (0,))
        )

        # Batched: B prefills first, then A and B decode together etc.
        kv2 = make_kv(CFG)
        m2 = LlamaModel(weights, kv2, reg)
        kv2.allocate("B", 6)
        m2.forward(TokenBatch(plan_batch([prefill_entry("B", "b", 6)]), prompt_b, (0,)))
        kv2.allocate("A", 4)
        kv2.append_slot("B")
        plan = plan_batch([prefill_entry("A", "a", 4), decode_entry("B", "b")])
        tokens = np.concatenate([prompt_a, [3]])
        batched = m2.forward(TokenBatch(plan, tokens, (0, 6)))
        idx = [i for i, e in enumerate(plan.entries) if e.request_id == "A"][0]
        np.testing.assert_allclose(batched[idx], solo[0], rtol=1e-8, atol=1e-10)

    def test_multi_lora_batch_each_matches_reference(self):
        weights = random_llama_weights(CFG, seed=2)
        reg = make_registry(CFG, ["m0", "m1", "m2"])
        kv = make_kv(CFG)
        model = LlamaModel(weights, kv, reg)
        rng = np.random.default_rng(13)
        prompts = {f"r{i}": rng.integers(0, CFG.vocab_size, size=4 + i) for i in range(3)}
        loras = {"r0": "m0", "r1": "m1", "r2": "m2"}

        # Prefill each request separately (Punica: one prefill per batch).
        for rid, prompt in prompts.items():
            kv.allocate(rid, len(prompt))
            plan = plan_batch([prefill_entry(rid, loras[rid], len(prompt))])
            model.forward(TokenBatch(plan, np.asarray(prompt), (0,)))

        # One decode batch across all three LoRA models.
        for rid in prompts:
            kv.append_slot(rid)
        next_tokens = {rid: int(prompts[rid][-1]) for rid in prompts}
        plan = plan_batch([decode_entry(rid, loras[rid]) for rid in prompts])
        ordered_ids = [e.request_id for e in plan.entries]
        tokens = np.asarray([next_tokens[rid] for rid in ordered_ids])
        pasts = tuple(len(prompts[rid]) for rid in ordered_ids)
        logits = model.forward(TokenBatch(plan, tokens, pasts))

        for i, rid in enumerate(ordered_ids):
            history = np.concatenate([prompts[rid], [next_tokens[rid]]])
            expected = reference_forward_full(weights, history, reg, loras[rid])
            np.testing.assert_allclose(logits[i], expected, rtol=1e-8, atol=1e-10)

    def test_backbone_only_no_registry(self):
        weights = random_llama_weights(CFG, seed=3)
        kv = make_kv(CFG)
        model = LlamaModel(weights, kv, registry=None)
        prompt = np.arange(5) % CFG.vocab_size
        kv.allocate("r", 5)
        logits = model.forward(
            TokenBatch(plan_batch([prefill_entry("r", "base", 5)]), prompt, (0,))
        )
        expected = reference_forward_full(weights, prompt)
        np.testing.assert_allclose(logits[0], expected, rtol=1e-8, atol=1e-10)

    def test_lora_actually_changes_output(self):
        weights = random_llama_weights(CFG, seed=4)
        reg = make_registry(CFG, ["m0"])
        prompt = np.arange(6) % CFG.vocab_size
        with_lora = reference_forward_full(weights, prompt, reg, "m0")
        without = reference_forward_full(weights, prompt)
        assert not np.allclose(with_lora, without)


class TestTokenBatch:
    def test_positions(self):
        plan = plan_batch([prefill_entry("p", "a", 3), decode_entry("d", "b")])
        tb = TokenBatch(plan, np.zeros(4, dtype=int), (0, 7))
        assert tb.positions().tolist() == [0, 1, 2, 7]

    def test_token_count_mismatch(self):
        plan = plan_batch([decode_entry("d", "a")])
        with pytest.raises(ValueError):
            TokenBatch(plan, np.zeros(2, dtype=int), (0,))

    def test_past_lens_mismatch(self):
        plan = plan_batch([decode_entry("d", "a")])
        with pytest.raises(ValueError):
            TokenBatch(plan, np.zeros(1, dtype=int), (0, 1))


class TestModelValidation:
    def test_kv_geometry_mismatch_rejected(self):
        weights = random_llama_weights(CFG, seed=0)
        bad_kv = PagedKvData(
            total_pages=4, page_size=4, num_layers=1,
            num_kv_heads=CFG.num_kv_heads, head_dim=CFG.head_dim,
        )
        with pytest.raises(ValueError, match="geometry"):
            LlamaModel(weights, bad_kv)
