"""End-to-end cluster simulation tests (the Fig 13 machinery)."""

import pytest

from repro.cluster.metrics import ClusterMetrics, TimeSeries
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.workloads.arrivals import PoissonArrivals, RampProfile, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def make_engines(n, max_batch=8):
    return [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
            EngineConfig(max_batch_size=max_batch),
        )
        for i in range(n)
    ]


def small_trace(n=40, rate=4.0, duration=20.0, seed=0, dist="skewed"):
    lengths = ShareGptLengths(max_prompt_len=64, max_response_len=32)
    arrivals = PoissonArrivals(rate=constant_rate(rate), duration=duration)
    return generate_trace(n * 3, dist, seed=seed, lengths=lengths, arrivals=arrivals)


class TestTimeSeries:
    def test_record_and_bucket(self):
        ts = TimeSeries()
        for t, v in [(0.5, 1.0), (1.5, 2.0), (2.5, 4.0)]:
            ts.record(t, v)
        buckets = ts.bucket_sum(bucket=1.0, duration=3.0)
        assert buckets == [(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)]

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(1.0, 1.0)

    def test_value_at(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(5.0, 20.0)
        assert ts.value_at(0.5) == 0.0
        assert ts.value_at(3.0) == 10.0
        assert ts.value_at(5.0) == 20.0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            TimeSeries().bucket_sum(0.0, 1.0)


class TestClusterSimulation:
    def test_all_requests_complete(self):
        sim = ClusterSimulator(make_engines(4))
        trace = small_trace()
        result = sim.run(trace)
        assert result.finished_requests == len(trace)
        assert result.tokens_generated == trace.total_response_tokens
        assert result.duration > 0

    def test_deterministic_under_seed(self):
        r1 = ClusterSimulator(make_engines(3)).run(small_trace(seed=5))
        r2 = ClusterSimulator(make_engines(3)).run(small_trace(seed=5))
        assert r1.duration == r2.duration
        assert r1.tokens_generated == r2.tokens_generated
        assert r1.num_migrations == r2.num_migrations

    def test_consolidation_prefers_few_gpus(self):
        # At low load, most GPUs should see no work at all.
        sim = ClusterSimulator(make_engines(8))
        trace = small_trace(rate=1.0, duration=30.0)
        result = sim.run(trace)
        used_gpus = {gid for gid, ts in result.metrics.gpu_batch_size.items() if len(ts)}
        assert len(used_gpus) <= 4

    def test_migration_count_reported(self):
        cfg = SchedulerConfig(migration_interval=2.0)
        sim = ClusterSimulator(make_engines(4, max_batch=4), cfg)
        result = sim.run(small_trace(rate=6.0, duration=30.0))
        assert result.num_migrations >= 0  # runs without error; count recorded
        assert result.finished_requests > 0

    def test_migration_disabled_still_completes(self):
        cfg = SchedulerConfig(consolidation=False)
        sim = ClusterSimulator(make_engines(4), cfg)
        result = sim.run(small_trace())
        assert result.finished_requests == result.metrics.arrivals.values.__len__()

    def test_throughput_series_has_load(self):
        sim = ClusterSimulator(make_engines(4))
        trace = small_trace(rate=6.0, duration=20.0)
        result = sim.run(trace)
        series = result.metrics.throughput_series(bucket=5.0, duration=result.duration)
        assert any(v > 0 for _, v in series)

    def test_ramp_trace_ramps(self):
        lengths = ShareGptLengths(max_prompt_len=32, max_response_len=16)
        arrivals = PoissonArrivals(rate=RampProfile(duration=40.0, peak_rate=6.0), duration=40.0)
        trace = generate_trace(400, "skewed", seed=1, lengths=lengths, arrivals=arrivals)
        sim = ClusterSimulator(make_engines(4))
        result = sim.run(trace)
        rates = result.metrics.request_rate_series(bucket=10.0, duration=40.0)
        mid = rates[1][1] + rates[2][1]
        edges = rates[0][1] + rates[3][1]
        assert mid > edges  # load concentrated mid-experiment
        assert result.finished_requests == len(trace)

    def test_latency_reasonable_at_low_load(self):
        sim = ClusterSimulator(make_engines(4))
        trace = small_trace(rate=2.0, duration=20.0)
        result = sim.run(trace)
        # Per-token latency should be tens of ms (decode step scale).
        assert 0.005 < result.mean_normalized_latency() < 0.5

    def test_saturated_cluster_queues_then_drains(self):
        sim = ClusterSimulator(make_engines(1, max_batch=2))
        trace = small_trace(n=10, rate=20.0, duration=3.0)
        result = sim.run(trace)
        assert result.finished_requests == len(trace)
        assert sim.scheduler.num_queued_total > 0
