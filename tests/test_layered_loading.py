"""Tests for layer-by-layer LoRA loading (§5.2 alternative)."""

import pytest

from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec
from repro.runtime.layered_loading import (
    LayeredTransferPlan,
    pipelined_prefill_finish,
    plan_layered_transfer,
    time_to_first_token,
)
from repro.utils.units import MB, US


class TestLayeredTransferPlan:
    def test_back_to_back_copies(self):
        plan = plan_layered_transfer(PCIE_GEN4_X16, [1 * MB] * 3, start=0.0)
        assert plan.num_layers == 3
        gaps = [
            plan.layer_finishes[i + 1] - plan.layer_finishes[i] for i in range(2)
        ]
        per_copy = PCIE_GEN4_X16.transfer_time(1 * MB)
        for g in gaps:
            assert g == pytest.approx(per_copy)

    def test_layers_ready(self):
        plan = plan_layered_transfer(PCIE_GEN4_X16, [1 * MB] * 4, start=0.0)
        assert plan.layers_ready(0.0) == 0
        assert plan.layers_ready(plan.layer_finishes[1]) == 2
        assert plan.layers_ready(plan.finish) == 4

    def test_per_copy_latency_overhead(self):
        # 32 small copies pay 32 fixed latencies; one big copy pays one.
        layers = [2 * MB] * 32
        layered = plan_layered_transfer(PCIE_GEN4_X16, layers, 0.0).finish
        whole = PCIE_GEN4_X16.transfer_time(sum(layers))
        assert layered == pytest.approx(whole + 31 * PCIE_GEN4_X16.latency)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_layered_transfer(PCIE_GEN4_X16, [], 0.0)
        with pytest.raises(ValueError):
            LayeredTransferPlan(start=1.0, layer_finishes=(0.5,))


class TestPipelinedPrefill:
    def test_compute_bound_when_load_fast(self):
        # Loads land instantly relative to compute: pipeline = pure compute.
        fast = PcieSpec(name="fast", effective_bandwidth=1e15, latency=0.0)
        plan = plan_layered_transfer(fast, [1 * MB] * 4, 0.0)
        finish = pipelined_prefill_finish(plan, layer_compute_time=1.0, compute_start=0.0)
        assert finish == pytest.approx(4.0)

    def test_load_bound_when_compute_fast(self):
        plan = plan_layered_transfer(PCIE_GEN4_X16, [10 * MB] * 4, 0.0)
        finish = pipelined_prefill_finish(plan, layer_compute_time=0.0, compute_start=0.0)
        assert finish == pytest.approx(plan.finish)


class TestTimeToFirstToken:
    def test_layered_never_slower_when_latency_free(self):
        free = PcieSpec(name="free", effective_bandwidth=25e9, latency=0.0)
        layers = [2.5 * MB] * 32
        layered = time_to_first_token(free, layers, 300 * US, layered=True)
        whole = time_to_first_token(free, layers, 300 * US, layered=False)
        assert layered <= whole

    def test_savings_bounded_by_load_time(self):
        layers = [2.5 * MB] * 32
        layered = time_to_first_token(PCIE_GEN4_X16, layers, 300 * US, layered=True)
        whole = time_to_first_token(PCIE_GEN4_X16, layers, 300 * US, layered=False)
        load = PCIE_GEN4_X16.transfer_time(sum(layers))
        assert whole - layered <= load
        # The paper's §5.2 point: the saving is a couple of ms at most —
        # negligible against thousands of ~30 ms decode steps.
        assert whole - layered < 0.005
