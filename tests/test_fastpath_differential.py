"""Differential equivalence: the fast-path engine vs the reference path.

The fast path (``REPRO_FASTPATH``, default on) layers four optimisations
over the simulation engine — kernel-cost memoisation, per-plan latency-term
caching, the engine's steady-state decode lane, and the simulator's inline
same-engine decode coalescing. The contract for every one of them is *bit
identity*: the optimised run must produce byte-identical traces and equal
results, not merely statistically similar ones.

This suite enforces the contract two ways:

* the three golden scenarios are run through both paths and compared on
  canonical JSONL bytes, per-request latency breakdowns, terminal request
  state and the unified metrics registry;
* Hypothesis generates randomized cluster workloads — mixed LoRA ranks and
  popularity, staggered arrivals, mid-run cancellations, scripted faults,
  1–3 GPUs, small batch limits — and replays each through both paths.

A final canary asserts the fast lanes actually engage, so a silent guard
regression cannot reduce this suite to comparing the slow path to itself.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.obs.analysis import compute_breakdowns
from repro.obs.scenarios import SCENARIOS, run_scenario
from repro.obs.tracer import Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def _request_states(requests):
    return [
        (
            r.request_id,
            r.state,
            r.num_generated,
            r.kv_len,
            r.first_admitted_time,
            r.first_token_time,
            r.finish_time,
            r.num_migrations,
            r.failure_reason,
            tuple(r.generated_tokens),
        )
        for r in sorted(requests, key=lambda r: r.request_id)
    ]


def _assert_equivalent(fast, ref):
    """Full observable-state comparison of two ScenarioResult-likes."""
    assert fast.tracer.dumps_jsonl() == ref.tracer.dumps_jsonl()
    assert compute_breakdowns(fast.tracer) == compute_breakdowns(ref.tracer)
    assert _request_states(fast.requests) == _request_states(ref.requests)
    if fast.metrics is not None or ref.metrics is not None:
        assert fast.metrics.registry.to_json() == ref.metrics.registry.to_json()
        assert fast.metrics.tokens == ref.metrics.tokens
        assert fast.metrics.gpu_batch_size == ref.metrics.gpu_batch_size


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 7])
def test_scenario_differential(name, seed):
    """Golden scenarios produce byte-identical traces through both paths."""
    fast = run_scenario(name, seed=seed, fast_path=True)
    ref = run_scenario(name, seed=seed, fast_path=False)
    _assert_equivalent(fast, ref)


# ---------------------------------------------------------------------------
# Randomized workloads
# ---------------------------------------------------------------------------
def _short_lengths():
    return ShareGptLengths(max_prompt_len=40, max_response_len=8)


def _build_and_run(
    *,
    seed,
    num_gpus,
    max_batch,
    rate,
    duration,
    lora_rank,
    cancel_picks,
    fault_plan,
    fast_path,
):
    trace = generate_trace(
        int(rate * duration) + 8,
        "skewed",
        seed=seed,
        lengths=_short_lengths(),
        arrivals=PoissonArrivals(rate=constant_rate(rate), duration=duration),
    )
    tracer = Tracer()
    injector = (
        FaultInjector(fault_plan, seed=seed) if fault_plan else None
    )
    sim = ClusterSimulator(
        [
            GpuEngine(
                f"gpu{i:02d}",
                SimulatedBackend(
                    LLAMA2_7B, step_overhead=0.05, lora_rank=lora_rank,
                    fast_path=fast_path,
                ),
                EngineConfig(max_batch_size=max_batch),
                fast_path=fast_path,
            )
            for i in range(num_gpus)
        ],
        SchedulerConfig(migration_interval=1.0, light_load_fraction=0.5),
        fault_injector=injector,
        tracer=tracer,
        fast_path=fast_path,
    )
    # Mid-run cancellations: each pick is (spec index, delay after its
    # arrival). The callback consults live request state, so both paths
    # issue exactly the same cancels iff their state evolution matches —
    # a divergence surfaces as differing CANCEL events in the trace.
    for idx, delay in cancel_picks:
        spec = trace.requests[idx % len(trace.requests)]
        when = spec.arrival_time + delay

        def _cancel(now, rid=spec.request_id):
            req = sim._requests.get(rid)
            if req is not None and req.state in (
                RequestState.QUEUED, RequestState.RUNNING
            ):
                sim.cancel(req, now)

        sim.loop.schedule(when, _cancel)
    result = sim.run(trace)
    summary = (
        result.events_processed,
        result.finished_requests,
        result.failed_requests,
        result.tokens_generated,
        result.num_migrations,
        result.duration,
    )
    return tracer, result, summary, sim


_FAULT_MENU = (
    FaultSpec(kind=FaultKind.GPU_SLOWDOWN, time=1.0, duration=1.0, factor=3.0),
    FaultSpec(kind=FaultKind.PCIE_STALL, time=1.5, duration=0.5),
    FaultSpec(kind=FaultKind.GPU_CRASH, time=2.0),
)


class _Run:
    def __init__(self, tracer, result, summary):
        self.tracer = tracer
        self.requests = result.requests
        self.metrics = result.metrics
        self.summary = summary


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_gpus=st.integers(min_value=1, max_value=3),
    max_batch=st.integers(min_value=2, max_value=6),
    rate=st.sampled_from([4.0, 8.0, 14.0]),
    duration=st.sampled_from([2.0, 3.5]),
    lora_rank=st.sampled_from([8, 16, 32]),
    cancel_picks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.floats(min_value=0.05, max_value=1.5),
        ),
        max_size=3,
    ),
    fault_subset=st.sets(st.integers(min_value=0, max_value=2), max_size=3),
)
def test_random_workload_differential(
    seed, num_gpus, max_batch, rate, duration, lora_rank, cancel_picks,
    fault_subset,
):
    """Any generated workload replays byte-identically through both paths."""
    fault_plan = [_FAULT_MENU[i] for i in sorted(fault_subset)]
    if num_gpus == 1:
        # A crash with no survivor leaves nothing to compare recovery on.
        fault_plan = [f for f in fault_plan if f.kind is not FaultKind.GPU_CRASH]
    kwargs = dict(
        seed=seed, num_gpus=num_gpus, max_batch=max_batch, rate=rate,
        duration=duration, lora_rank=lora_rank, cancel_picks=cancel_picks,
        fault_plan=fault_plan,
    )
    ftracer, fresult, fsummary, _ = _build_and_run(fast_path=True, **kwargs)
    rtracer, rresult, rsummary, _ = _build_and_run(fast_path=False, **kwargs)
    assert fsummary == rsummary
    _assert_equivalent(
        _Run(ftracer, fresult, fsummary), _Run(rtracer, rresult, rsummary)
    )


# ---------------------------------------------------------------------------
# Canary: the fast lanes must actually engage
# ---------------------------------------------------------------------------
def test_fast_lanes_engage():
    """A decode-heavy run must hit the steady lane, the inline coalescer
    and the plan cache — otherwise the differential suite would be
    comparing the reference path to itself."""
    trace = generate_trace(
        40, "skewed", seed=3,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=24),
        arrivals=PoissonArrivals(rate=constant_rate(10.0), duration=4.0),
    )
    engines = [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, fast_path=True),
            EngineConfig(max_batch_size=8),
            fast_path=True,
        )
        for i in range(2)
    ]
    sim = ClusterSimulator(engines, fast_path=True)
    sim.run(trace)
    assert sum(e.fast_steps for e in engines) > 0
    assert sum(e.slow_steps for e in engines) > 0
    assert sim.inline_steps > 0
    assert any(e._plan_cache.hits + e._plan_cache.misses > 0 for e in engines)


def test_reference_path_never_engages_fast_lanes():
    trace = generate_trace(
        20, "skewed", seed=3,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=12),
        arrivals=PoissonArrivals(rate=constant_rate(8.0), duration=2.0),
    )
    engines = [
        GpuEngine(
            "gpu00",
            SimulatedBackend(LLAMA2_7B, fast_path=False),
            EngineConfig(max_batch_size=8),
            fast_path=False,
        )
    ]
    sim = ClusterSimulator(engines, fast_path=False)
    sim.run(trace)
    assert engines[0].fast_steps == 0
    assert sim.inline_steps == 0
    assert engines[0]._plan_cache is None
