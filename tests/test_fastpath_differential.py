"""Differential equivalence: the fast-path engine vs the reference path.

The fast path (``REPRO_FASTPATH``, default on) layers four optimisations
over the simulation engine — kernel-cost memoisation, per-plan latency-term
caching, the engine's steady-state decode lane, and the simulator's inline
same-engine decode coalescing. The contract for every one of them is *bit
identity*: the optimised run must produce byte-identical traces and equal
results, not merely statistically similar ones.

This suite enforces the contract two ways:

* the three golden scenarios are run through both paths and compared on
  canonical JSONL bytes, per-request latency breakdowns, terminal request
  state and the unified metrics registry;
* Hypothesis generates randomized cluster workloads — mixed LoRA ranks and
  popularity, staggered arrivals, mid-run cancellations, scripted faults,
  1–3 GPUs, small batch limits — and replays each through both paths.

A final canary asserts the fast lanes actually engage, so a silent guard
regression cannot reduce this suite to comparing the slow path to itself.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.obs.analysis import compute_breakdowns
from repro.obs.scenarios import SCENARIOS, run_scenario
from repro.obs.tracer import Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.runtime.spec import SpecConfig
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def _request_states(requests):
    return [
        (
            r.request_id,
            r.state,
            r.num_generated,
            r.kv_len,
            r.first_admitted_time,
            r.first_token_time,
            r.finish_time,
            r.num_migrations,
            r.failure_reason,
            tuple(r.generated_tokens),
        )
        for r in sorted(requests, key=lambda r: r.request_id)
    ]


def _assert_equivalent(fast, ref):
    """Full observable-state comparison of two ScenarioResult-likes."""
    assert fast.tracer.dumps_jsonl() == ref.tracer.dumps_jsonl()
    assert compute_breakdowns(fast.tracer) == compute_breakdowns(ref.tracer)
    assert _request_states(fast.requests) == _request_states(ref.requests)
    if fast.metrics is not None or ref.metrics is not None:
        assert fast.metrics.registry.to_json() == ref.metrics.registry.to_json()
        assert fast.metrics.tokens == ref.metrics.tokens
        assert fast.metrics.gpu_batch_size == ref.metrics.gpu_batch_size


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 7])
def test_scenario_differential(name, seed):
    """Golden scenarios produce byte-identical traces through both paths."""
    fast = run_scenario(name, seed=seed, fast_path=True)
    ref = run_scenario(name, seed=seed, fast_path=False)
    _assert_equivalent(fast, ref)


# ---------------------------------------------------------------------------
# Randomized workloads
# ---------------------------------------------------------------------------
def _short_lengths():
    return ShareGptLengths(max_prompt_len=40, max_response_len=8)


def _build_and_run(
    *,
    seed,
    num_gpus,
    max_batch,
    rate,
    duration,
    lora_rank,
    cancel_picks,
    fault_plan,
    fast_path,
    spec=None,
):
    trace = generate_trace(
        int(rate * duration) + 8,
        "skewed",
        seed=seed,
        lengths=_short_lengths(),
        arrivals=PoissonArrivals(rate=constant_rate(rate), duration=duration),
    )
    tracer = Tracer()
    injector = (
        FaultInjector(fault_plan, seed=seed) if fault_plan else None
    )
    sim = ClusterSimulator(
        [
            GpuEngine(
                f"gpu{i:02d}",
                SimulatedBackend(
                    LLAMA2_7B, step_overhead=0.05, lora_rank=lora_rank,
                    fast_path=fast_path,
                ),
                EngineConfig(max_batch_size=max_batch, spec=spec),
                fast_path=fast_path,
            )
            for i in range(num_gpus)
        ],
        SchedulerConfig(migration_interval=1.0, light_load_fraction=0.5),
        fault_injector=injector,
        tracer=tracer,
        fast_path=fast_path,
    )
    # Mid-run cancellations: each pick is (spec index, delay after its
    # arrival). The callback consults live request state, so both paths
    # issue exactly the same cancels iff their state evolution matches —
    # a divergence surfaces as differing CANCEL events in the trace.
    for idx, delay in cancel_picks:
        spec = trace.requests[idx % len(trace.requests)]
        when = spec.arrival_time + delay

        def _cancel(now, rid=spec.request_id):
            req = sim._requests.get(rid)
            if req is not None and req.state in (
                RequestState.QUEUED, RequestState.RUNNING
            ):
                sim.cancel(req, now)

        sim.loop.schedule(when, _cancel)
    result = sim.run(trace)
    summary = (
        result.events_processed,
        result.finished_requests,
        result.failed_requests,
        result.tokens_generated,
        result.num_migrations,
        result.duration,
    )
    return tracer, result, summary, sim


_FAULT_MENU = (
    FaultSpec(kind=FaultKind.GPU_SLOWDOWN, time=1.0, duration=1.0, factor=3.0),
    FaultSpec(kind=FaultKind.PCIE_STALL, time=1.5, duration=0.5),
    FaultSpec(kind=FaultKind.GPU_CRASH, time=2.0),
)

# The speculative lane menu: disarmed, a rejection-heavy low-acceptance
# draft (maximum rollback traffic), and a burst-heavy high-acceptance one.
_SPEC_MENU = (
    None,
    SpecConfig(draft_len=2, acceptance_rate=0.2, seed=1),
    SpecConfig(draft_len=4, acceptance_rate=0.9, seed=2),
)


class _Run:
    def __init__(self, tracer, result, summary):
        self.tracer = tracer
        self.requests = result.requests
        self.metrics = result.metrics
        self.summary = summary


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_gpus=st.integers(min_value=1, max_value=3),
    max_batch=st.integers(min_value=2, max_value=6),
    rate=st.sampled_from([4.0, 8.0, 14.0]),
    duration=st.sampled_from([2.0, 3.5]),
    lora_rank=st.sampled_from([8, 16, 32]),
    cancel_picks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.floats(min_value=0.05, max_value=1.5),
        ),
        max_size=3,
    ),
    fault_subset=st.sets(st.integers(min_value=0, max_value=2), max_size=3),
    spec=st.sampled_from(_SPEC_MENU),
)
def test_random_workload_differential(
    seed, num_gpus, max_batch, rate, duration, lora_rank, cancel_picks,
    fault_subset, spec,
):
    """Any generated workload replays byte-identically through both paths."""
    fault_plan = [_FAULT_MENU[i] for i in sorted(fault_subset)]
    if num_gpus == 1:
        # A crash with no survivor leaves nothing to compare recovery on.
        fault_plan = [f for f in fault_plan if f.kind is not FaultKind.GPU_CRASH]
    kwargs = dict(
        seed=seed, num_gpus=num_gpus, max_batch=max_batch, rate=rate,
        duration=duration, lora_rank=lora_rank, cancel_picks=cancel_picks,
        fault_plan=fault_plan, spec=spec,
    )
    ftracer, fresult, fsummary, fsim = _build_and_run(fast_path=True, **kwargs)
    rtracer, rresult, rsummary, rsim = _build_and_run(fast_path=False, **kwargs)
    assert fsummary == rsummary
    _assert_equivalent(
        _Run(ftracer, fresult, fsummary), _Run(rtracer, rresult, rsummary)
    )
    # Page accounting returns to baseline on both paths: rejected drafts,
    # cancels and crashes may not leak a single KvCache page.
    for sim in (fsim, rsim):
        for engine in sim.scheduler.engines.values():
            assert engine.backend.kv.allocator.used_pages == 0


# ---------------------------------------------------------------------------
# Composed untraced workloads: the cross-engine vector lane under load
# ---------------------------------------------------------------------------
# A Tracer pins per-step event streams, which (by design) disarms the
# gen-2 cross-engine merge lane — so the traced suite above never covers
# it. These runs go untraced and compare everything that remains
# observable: terminal request state, the unified metrics registry, the
# metrics time-series, and the summary tuple. Workloads *compose* the
# features the per-feature suites cover in isolation: disagg pools,
# scripted faults, cancellation storms, and the serve gateway's
# admission + disconnect path.


def _serve_drive(sim, trace, storm_picks):
    """Drive ``trace`` through the ServeGateway on the sim's event loop.

    ``storm_picks`` schedules mid-stream client disconnects (the
    cancellation storm, expressed the way the serving frontend causes
    it: ``client_close`` -> CANCEL ``reason="disconnect"``).
    """
    from repro.cluster.frontend import Frontend
    from repro.serve.gateway import ServeGateway
    from repro.serve.limits import AdmissionController, TenantPolicy
    from repro.serve.metrics import ServeMetrics

    gateway = ServeGateway(
        Frontend(sim),
        AdmissionController(
            default_policy=TenantPolicy(rate=3.0, burst=2.0, max_inflight=5),
            max_total_inflight=24,
        ),
        metrics=ServeMetrics(),
        tracer=None,
    )
    storm = {idx % len(trace.requests): delay for idx, delay in storm_picks}

    def make_open(spec, index: int):
        def action(now: float) -> None:
            stream, _ = gateway.open(
                tenant=spec.lora_id, lora_id=spec.lora_id,
                prompt_len=spec.prompt_len, response_len=spec.response_len,
                now=now, request_id=spec.request_id,
            )
            delay = storm.get(index)
            if stream is not None and delay is not None:
                sim.loop.schedule(
                    now + delay,
                    lambda t, rid=spec.request_id: gateway.client_close(rid, t),
                )

        return action

    for i, spec in enumerate(trace):
        sim.loop.schedule(spec.arrival_time, make_open(spec, i))

    def poll_tick(now: float) -> None:
        gateway.poll(now)
        if sim.work_remaining() or gateway.open_streams():
            sim.loop.schedule(now + 0.25, poll_tick)

    sim.loop.schedule(0.25, poll_tick)
    sim.loop.run()
    gateway.poll(sim.now)
    return list(sim._requests.values())


def _build_composed(
    *,
    seed,
    topology,
    num_gpus,
    max_batch,
    rate,
    duration,
    lora_rank,
    storm_picks,
    fault_plan,
    serve_frontend,
    fast_path,
    spec=None,
):
    from repro.cluster.disagg import DisaggConfig, DisaggSimulator

    trace = generate_trace(
        int(rate * duration) + 8,
        "skewed",
        seed=seed,
        lengths=_short_lengths(),
        arrivals=PoissonArrivals(rate=constant_rate(rate), duration=duration),
    )
    injector = FaultInjector(fault_plan, seed=seed) if fault_plan else None

    def engines(ids):
        return [
            GpuEngine(
                f"gpu{i:02d}",
                SimulatedBackend(
                    LLAMA2_7B, step_overhead=0.05, lora_rank=lora_rank,
                    fast_path=fast_path,
                ),
                EngineConfig(max_batch_size=max_batch, spec=spec),
                fast_path=fast_path,
            )
            for i in ids
        ]

    if topology == "disagg":
        n_prefill = max(1, num_gpus // 2)
        sim = DisaggSimulator(
            engines(range(n_prefill)),
            engines(range(n_prefill, num_gpus)),
            config=DisaggConfig(decode_queue_limit=2),
            fault_injector=injector,
            tracer=None,
            fast_path=fast_path,
        )
    else:
        sim = ClusterSimulator(
            engines(range(num_gpus)),
            SchedulerConfig(migration_interval=1.0, light_load_fraction=0.5),
            fault_injector=injector,
            tracer=None,
            fast_path=fast_path,
        )

    if serve_frontend:
        requests = _serve_drive(sim, trace, storm_picks)
        by_state = {}
        for r in requests:
            by_state[r.state.name] = by_state.get(r.state.name, 0) + 1
        summary = (
            sim.loop.processed,
            tuple(sorted(by_state.items())),
            sum(r.num_generated for r in requests),
            sim.now,
        )
        return requests, sim.metrics, summary, sim

    # Direct cancellation storm: same mechanism as the traced suite, but
    # storm-sized, and racing the vector merge lane instead of the
    # per-step one.
    for idx, delay in storm_picks:
        spec = trace.requests[idx % len(trace.requests)]

        def _cancel(now, rid=spec.request_id):
            req = sim._requests.get(rid)
            if req is not None and req.state in (
                RequestState.QUEUED, RequestState.RUNNING
            ):
                sim.cancel(req, now)

        sim.loop.schedule(spec.arrival_time + delay, _cancel)
    result = sim.run(trace)
    summary = (
        result.events_processed,
        result.finished_requests,
        result.failed_requests,
        result.tokens_generated,
        result.num_migrations,
        result.duration,
    )
    return result.requests, result.metrics, summary, sim


def _assert_composed_equivalent(fast, ref):
    frequests, fmetrics, fsummary, _ = fast
    rrequests, rmetrics, rsummary, _ = ref
    assert fsummary == rsummary
    assert _request_states(frequests) == _request_states(rrequests)
    assert fmetrics.registry.to_json() == rmetrics.registry.to_json()
    assert fmetrics.tokens == rmetrics.tokens
    assert fmetrics.gpu_batch_size == rmetrics.gpu_batch_size


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    topology=st.sampled_from(["cluster", "disagg"]),
    serve_frontend=st.booleans(),
    num_gpus=st.integers(min_value=2, max_value=4),
    max_batch=st.integers(min_value=2, max_value=6),
    rate=st.sampled_from([6.0, 10.0, 14.0]),
    duration=st.sampled_from([2.0, 3.5]),
    lora_rank=st.sampled_from([8, 16]),
    storm_picks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.floats(min_value=0.05, max_value=1.5),
        ),
        max_size=10,
    ),
    fault_subset=st.sets(st.integers(min_value=0, max_value=2), max_size=3),
    spec=st.sampled_from(_SPEC_MENU),
)
def test_composed_untraced_differential(
    seed, topology, serve_frontend, num_gpus, max_batch, rate, duration,
    lora_rank, storm_picks, fault_subset, spec,
):
    """Disagg pools x faults x cancellation storms x serve admission,
    untraced so the cross-engine vector merge lane is armed: both paths
    must agree on every observable the run leaves behind."""
    fault_plan = [_FAULT_MENU[i] for i in sorted(fault_subset)]
    if num_gpus <= 2:
        # Disagg's decode pool (or a 2-GPU cluster) may not survive a
        # crash with work to compare afterwards.
        fault_plan = [f for f in fault_plan if f.kind is not FaultKind.GPU_CRASH]
    if serve_frontend and topology == "disagg":
        # The serve gateway drives the plain cluster scheduler; disagg
        # exercises its own handoff frontend instead.
        topology = "cluster"
    kwargs = dict(
        seed=seed, topology=topology, num_gpus=num_gpus, max_batch=max_batch,
        rate=rate, duration=duration, lora_rank=lora_rank,
        storm_picks=storm_picks, fault_plan=fault_plan,
        serve_frontend=serve_frontend, spec=spec,
    )
    fast = _build_composed(fast_path=True, **kwargs)
    ref = _build_composed(fast_path=False, **kwargs)
    _assert_composed_equivalent(fast, ref)


def test_vector_merge_lane_engages_untraced():
    """The canary for the composed suite: an untraced decode-heavy
    multi-GPU run must actually commit cross-engine merges — otherwise
    the suite above is comparing the per-step lane to itself."""
    trace = generate_trace(
        60, "skewed", seed=5,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=24),
        arrivals=PoissonArrivals(rate=constant_rate(12.0), duration=5.0),
    )
    engines = [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, fast_path=True),
            EngineConfig(max_batch_size=8),
            fast_path=True,
        )
        for i in range(2)
    ]
    sim = ClusterSimulator(engines, fast_path=True)
    sim.run(trace)
    assert sim._vector.merges > 0
    assert sim._vector.merged_steps > sim._vector.merges


# ---------------------------------------------------------------------------
# Canary: the fast lanes must actually engage
# ---------------------------------------------------------------------------
def test_fast_lanes_engage():
    """A decode-heavy run must hit the steady lane, the inline coalescer
    and the plan cache — otherwise the differential suite would be
    comparing the reference path to itself."""
    trace = generate_trace(
        40, "skewed", seed=3,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=24),
        arrivals=PoissonArrivals(rate=constant_rate(10.0), duration=4.0),
    )
    engines = [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, fast_path=True),
            EngineConfig(max_batch_size=8),
            fast_path=True,
        )
        for i in range(2)
    ]
    sim = ClusterSimulator(engines, fast_path=True)
    sim.run(trace)
    assert sum(e.fast_steps for e in engines) > 0
    assert sum(e.slow_steps for e in engines) > 0
    assert sim.inline_steps > 0
    assert any(e._plan_cache.hits + e._plan_cache.misses > 0 for e in engines)


def test_spec_lane_engages_in_differential_workloads():
    """The canary for the spec dimension: an armed workload from the
    Hypothesis menu must actually run speculative rounds on both paths —
    otherwise the spec x faults x cancellation sweep is vacuous."""
    kwargs = dict(
        seed=9, num_gpus=2, max_batch=4, rate=8.0, duration=2.0,
        lora_rank=16, cancel_picks=[(3, 0.2)], fault_plan=[_FAULT_MENU[0]],
        spec=_SPEC_MENU[1],
    )
    for fast_path in (True, False):
        _, _, _, sim = _build_and_run(fast_path=fast_path, **kwargs)
        engines = list(sim.scheduler.engines.values())
        assert sum(e.spec_rounds for e in engines) > 0
        # Armed engines never take the one-token steady lane.
        assert all(e.fast_steps == 0 for e in engines)


def test_reference_path_never_engages_fast_lanes():
    trace = generate_trace(
        20, "skewed", seed=3,
        lengths=ShareGptLengths(max_prompt_len=32, max_response_len=12),
        arrivals=PoissonArrivals(rate=constant_rate(8.0), duration=2.0),
    )
    engines = [
        GpuEngine(
            "gpu00",
            SimulatedBackend(LLAMA2_7B, fast_path=False),
            EngineConfig(max_batch_size=8),
            fast_path=False,
        )
    ]
    sim = ClusterSimulator(engines, fast_path=False)
    sim.run(trace)
    assert engines[0].fast_steps == 0
    assert sim.inline_steps == 0
    assert engines[0]._plan_cache is None
