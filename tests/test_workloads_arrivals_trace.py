"""Tests for arrival processes and trace generation."""

import numpy as np
import pytest

from repro.workloads.arrivals import PoissonArrivals, RampProfile, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import RequestSpec, Trace, generate_trace, open_loop_trace


class TestRampProfile:
    def test_triangle_shape(self):
        p = RampProfile(duration=100.0, peak_rate=10.0)
        assert p(0.0) == 0.0
        assert p(50.0) == pytest.approx(10.0)
        assert p(25.0) == pytest.approx(5.0)
        assert p(75.0) == pytest.approx(5.0)
        assert p(100.0) == pytest.approx(0.0)

    def test_trapezoid_hold(self):
        p = RampProfile(duration=100.0, peak_rate=10.0, hold_fraction=0.5)
        assert p(30.0) == pytest.approx(10.0)
        assert p(70.0) == pytest.approx(10.0)
        assert p(12.5) == pytest.approx(5.0)

    def test_outside_window_zero(self):
        p = RampProfile(duration=10.0, peak_rate=1.0)
        assert p(-1.0) == 0.0
        assert p(11.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            RampProfile(duration=0, peak_rate=1)
        with pytest.raises(ValueError):
            RampProfile(duration=1, peak_rate=1, hold_fraction=1.0)


class TestPoissonArrivals:
    def test_sorted_and_bounded(self):
        proc = PoissonArrivals(rate=constant_rate(5.0), duration=100.0)
        t = proc.sample(rng=0)
        assert (np.diff(t) >= 0).all()
        assert (t >= 0).all() and (t < 100.0).all()

    def test_rate_matches_expectation(self):
        proc = PoissonArrivals(rate=constant_rate(10.0), duration=200.0)
        n = len(proc.sample(rng=0))
        assert 1700 < n < 2300  # 2000 +- ~5 sigma

    def test_ramp_concentrates_midway(self):
        proc = PoissonArrivals(rate=RampProfile(100.0, 10.0), duration=100.0)
        t = proc.sample(rng=0)
        mid = np.sum((t > 25) & (t < 75))
        assert mid > 0.6 * len(t)

    def test_zero_rate(self):
        proc = PoissonArrivals(rate=constant_rate(0.0), duration=10.0)
        assert len(proc.sample(rng=0)) == 0

    def test_reproducible(self):
        proc = PoissonArrivals(rate=constant_rate(3.0), duration=50.0)
        np.testing.assert_array_equal(proc.sample(rng=4), proc.sample(rng=4))


class TestTrace:
    def test_generate_closed_loop(self):
        trace = generate_trace(100, "uniform", seed=0)
        assert len(trace) == 100
        assert all(r.arrival_time == 0.0 for r in trace)
        assert trace.num_lora_models == 10

    def test_generate_reproducible(self):
        a = generate_trace(50, "skewed", seed=1)
        b = generate_trace(50, "skewed", seed=1)
        assert a.requests == b.requests

    def test_seed_isolation_between_subsystems(self):
        # Changing distribution must not change the sampled lengths.
        a = generate_trace(50, "uniform", seed=2)
        b = generate_trace(50, "distinct", seed=2)
        assert [(r.prompt_len, r.response_len) for r in a] == [
            (r.prompt_len, r.response_len) for r in b
        ]

    def test_open_loop_sorted(self):
        trace = open_loop_trace(rate=2.0, duration=50.0, seed=0)
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        assert len(trace) > 50

    def test_totals(self):
        trace = generate_trace(10, "identical", seed=0)
        assert trace.total_prompt_tokens == sum(r.prompt_len for r in trace)
        assert trace.total_response_tokens == sum(r.response_len for r in trace)

    def test_with_arrivals_at_zero(self):
        trace = open_loop_trace(rate=2.0, duration=10.0, seed=0)
        z = trace.with_arrivals_at_zero()
        assert all(r.arrival_time == 0.0 for r in z)
        assert len(z) == len(trace)

    def test_unsorted_trace_rejected(self):
        r1 = RequestSpec("a", "l", 5.0, 4, 4)
        r2 = RequestSpec("b", "l", 1.0, 4, 4)
        with pytest.raises(ValueError, match="sorted"):
            Trace((r1, r2))

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            RequestSpec("a", "l", -1.0, 4, 4)
        with pytest.raises(ValueError):
            RequestSpec("a", "l", 0.0, 0, 4)

    def test_custom_lengths(self):
        short = ShareGptLengths(max_prompt_len=8, max_response_len=8)
        trace = generate_trace(20, "uniform", seed=0, lengths=short)
        assert all(r.prompt_len <= 8 and r.response_len <= 8 for r in trace)
