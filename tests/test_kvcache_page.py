"""Tests for the paged KvCache allocator, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.kvcache.page import PageAllocator, pages_needed


class TestPagesNeeded:
    @pytest.mark.parametrize(
        "seq,page,expect",
        [(1, 16, 1), (16, 16, 1), (17, 16, 2), (0, 16, 0), (2048, 16, 128)],
    )
    def test_ceiling(self, seq, page, expect):
        assert pages_needed(seq, page) == expect

    def test_invalid(self):
        with pytest.raises(ValueError):
            pages_needed(1, 0)
        with pytest.raises(ValueError):
            pages_needed(-1, 16)


class TestPageAllocator:
    def test_allocate_free_roundtrip(self):
        a = PageAllocator(total_pages=8, page_size=16)
        pages = a.allocate("r1", 40)  # 3 pages
        assert len(pages) == 3
        assert a.free_pages == 5
        assert a.free("r1") == 3
        assert a.free_pages == 8

    def test_no_double_allocation(self):
        a = PageAllocator(total_pages=8, page_size=16)
        p1 = a.allocate("r1", 33)
        p2 = a.allocate("r2", 33)
        assert not set(p1) & set(p2)

    def test_duplicate_id_rejected(self):
        a = PageAllocator(total_pages=8, page_size=16)
        a.allocate("r1", 1)
        with pytest.raises(ValueError, match="already"):
            a.allocate("r1", 1)

    def test_out_of_memory(self):
        a = PageAllocator(total_pages=2, page_size=16)
        with pytest.raises(MemoryError):
            a.allocate("big", 100)
        # Failed allocation must not leak pages.
        assert a.free_pages == 2

    def test_append_within_page_free(self):
        a = PageAllocator(total_pages=4, page_size=16)
        a.allocate("r", 10)
        assert a.append("r", 1) == []  # still inside page 0
        assert a.seq_len("r") == 11

    def test_append_crosses_page_boundary(self):
        a = PageAllocator(total_pages=4, page_size=16)
        a.allocate("r", 16)
        new = a.append("r", 1)
        assert len(new) == 1
        assert a.seq_len("r") == 17

    def test_append_oom(self):
        a = PageAllocator(total_pages=1, page_size=4)
        a.allocate("r", 4)
        with pytest.raises(MemoryError):
            a.append("r", 1)

    def test_can_allocate_and_can_append(self):
        a = PageAllocator(total_pages=2, page_size=4)
        assert a.can_allocate(8)
        assert not a.can_allocate(9)
        a.allocate("r", 4)
        assert a.can_append("r", 4)
        assert not a.can_append("r", 5)

    def test_unknown_sequence(self):
        a = PageAllocator(total_pages=2, page_size=4)
        with pytest.raises(KeyError):
            a.free("ghost")
        with pytest.raises(KeyError):
            a.append("ghost")

    def test_stats(self):
        a = PageAllocator(total_pages=10, page_size=8)
        a.allocate("r1", 12)  # 2 pages, 12 tokens
        s = a.stats()
        assert s.total_pages == 10
        assert s.used_pages == 2
        assert s.num_sequences == 1
        assert s.allocated_tokens == 12
        assert s.utilization == pytest.approx(0.2)

    def test_internal_fragmentation_bounded(self):
        a = PageAllocator(total_pages=10, page_size=8)
        a.allocate("r1", 9)  # 2 pages, 7 slots wasted
        assert a.internal_fragmentation() == pytest.approx(7 / 16)
        a2 = PageAllocator(total_pages=10, page_size=8)
        assert a2.internal_fragmentation() == 0.0

    def test_paper_page_count_formula(self):
        # §5.4: total pages = sum_i ceil(S_i / P).
        a = PageAllocator(total_pages=100, page_size=16)
        lengths = [5, 16, 17, 100]
        for i, s in enumerate(lengths):
            a.allocate(f"r{i}", s)
        assert a.used_pages == sum(pages_needed(s, 16) for s in lengths)


class TestExportImport:
    def test_roundtrip_frees_then_reallocates(self):
        a = PageAllocator(total_pages=8, page_size=16)
        a.allocate("r1", 40)  # 3 pages
        tokens = a.export_sequence("r1")
        assert tokens == 40
        assert "r1" not in a
        assert a.free_pages == 8
        pages = a.import_sequence("r1", tokens)
        assert len(pages) == 3
        assert a.seq_len("r1") == 40

    def test_export_unknown_sequence(self):
        a = PageAllocator(total_pages=8, page_size=16)
        with pytest.raises(KeyError):
            a.export_sequence("ghost")

    def test_import_respects_capacity(self):
        a = PageAllocator(total_pages=2, page_size=16)
        with pytest.raises(MemoryError):
            a.import_sequence("big", 100)


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful property test: the allocator never leaks or double-books."""

    def __init__(self):
        super().__init__()
        self.alloc = PageAllocator(total_pages=32, page_size=4)
        self.live: dict[str, int] = {}
        self.counter = 0

    @rule(seq_len=st.integers(1, 40))
    def allocate(self, seq_len):
        sid = f"s{self.counter}"
        self.counter += 1
        if self.alloc.can_allocate(seq_len):
            self.alloc.allocate(sid, seq_len)
            self.live[sid] = seq_len
        else:
            with pytest.raises(MemoryError):
                self.alloc.allocate(sid, seq_len)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def append(self, data):
        sid = data.draw(st.sampled_from(sorted(self.live)))
        if self.alloc.can_append(sid, 1):
            self.alloc.append(sid, 1)
            self.live[sid] += 1

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        sid = data.draw(st.sampled_from(sorted(self.live)))
        self.alloc.free(sid)
        del self.live[sid]

    @invariant()
    def pages_conserved(self):
        expected_used = sum(pages_needed(s, 4) for s in self.live.values())
        assert self.alloc.used_pages == expected_used
        assert self.alloc.free_pages == 32 - expected_used

    @invariant()
    def no_double_booking(self):
        seen = set()
        for sid in self.live:
            pages = set(self.alloc.pages_of(sid))
            assert not pages & seen
            seen |= pages


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
