"""Unit tests for the tracer: typed events, canonical JSONL round-trips."""

from __future__ import annotations

import pytest

from repro.obs.tracer import EventKind, TERMINAL_KINDS, TraceEvent, Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.emit(0.0, EventKind.SUBMIT, request_id="req-0", lora="lora-1",
                prompt=32, response=8)
    tracer.emit(0.001, EventKind.PLACE, request_id="req-0", gpu_id="gpu00",
                lora="lora-1")
    tracer.emit(0.004, EventKind.ADAPTER_LOAD, gpu_id="gpu00", lora="lora-1",
                tier="host", ready_in=0.003, nbytes=1 << 20)
    tracer.emit(0.02, EventKind.PREFILL, request_id="req-0", gpu_id="gpu00",
                start=0.004, tokens=32)
    tracer.emit(0.05, EventKind.DECODE_STEP, request_id="req-0",
                gpu_id="gpu00", start=0.02, token_index=0)
    tracer.emit(0.08, EventKind.FINISH, request_id="req-0", gpu_id="gpu00",
                tokens=8)
    return tracer


def test_emit_assigns_monotonic_seq():
    tracer = _sample_tracer()
    assert [e.seq for e in tracer.events] == list(range(6))


def test_events_are_immutable():
    event = _sample_tracer().events[0]
    with pytest.raises(AttributeError):
        event.time = 99.0


def test_jsonl_round_trip_is_lossless():
    tracer = _sample_tracer()
    text = tracer.dumps_jsonl()
    assert text.endswith("\n")
    loaded = Tracer.loads_jsonl(text)
    assert loaded.events == tracer.events
    assert loaded.dumps_jsonl() == text


def test_jsonl_is_canonical_bytes():
    """Serialization is key-sorted, separator-stable and repr-exact —
    the property the byte-for-byte golden comparison relies on."""
    tracer = Tracer()
    tracer.emit(0.1 + 0.2, EventKind.SUBMIT, request_id="r", z=1, a=2)
    line = tracer.dumps_jsonl().rstrip("\n")
    assert line == (
        '{"attrs":{"a":2,"z":1},"kind":"SUBMIT","req":"r",'
        '"seq":0,"t":0.30000000000000004}'
    )


def test_file_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.jsonl"
    tracer.dump_jsonl(path)
    assert Tracer.load_jsonl(path).events == tracer.events


def test_none_fields_are_omitted():
    tracer = Tracer()
    tracer.emit(1.0, EventKind.FAULT, gpu_id="gpu01", fault="gpu_crash")
    obj = tracer.events[0].to_json_obj()
    assert "req" not in obj
    assert obj["gpu"] == "gpu01"
    restored = TraceEvent.from_json_obj(obj)
    assert restored.request_id is None
    assert restored == tracer.events[0]


def test_query_helpers():
    tracer = _sample_tracer()
    tracer.emit(0.09, EventKind.SUBMIT, request_id="req-1")
    assert tracer.request_ids() == ["req-0", "req-1"]
    assert [e.kind for e in tracer.for_request("req-0")][0] is EventKind.SUBMIT
    assert len(tracer.by_kind(EventKind.SUBMIT)) == 2
    assert TERMINAL_KINDS == (EventKind.FINISH, EventKind.SHED, EventKind.CANCEL)


def test_sorted_events_orders_by_time_then_seq():
    tracer = Tracer()
    tracer.emit(2.0, EventKind.SUBMIT, request_id="b")
    tracer.emit(1.0, EventKind.SUBMIT, request_id="a")
    tracer.emit(1.0, EventKind.PLACE, request_id="a", gpu_id="g")
    ordered = tracer.sorted_events()
    assert [(e.time, e.seq) for e in ordered] == [(1.0, 1), (1.0, 2), (2.0, 0)]


def test_unknown_kind_rejected_on_load():
    with pytest.raises((KeyError, ValueError)):
        Tracer.loads_jsonl('{"kind":"NOT_A_KIND","seq":0,"t":0.0}\n')
