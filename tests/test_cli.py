"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import RUNNERS, build_parser, main


class TestParser:
    def test_all_figures_registered(self):
        assert set(RUNNERS) == {
            "fig01", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "loader",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_requests_flag_only_on_serving_figures(self):
        parser = build_parser()
        args = parser.parse_args(["fig11", "--requests", "50"])
        assert args.requests == 50
        with pytest.raises(SystemExit):
            parser.parse_args(["fig08", "--requests", "50"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "Figure 11" in out

    def test_run_cheap_figure(self, capsys):
        assert main(["fig08"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "sgmv_us" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["loader", "--out", str(tmp_path)]) == 0
        saved = tmp_path / "loader.txt"
        assert saved.exists()
        assert "On-demand LoRA load" in saved.read_text()

    def test_requests_override(self, capsys):
        assert main(["fig12", "--requests", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 requests" in out


class TestDisaggSubcommand:
    def test_bad_interconnect_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["disagg", "--interconnect", "pigeon"])

    def test_ablation_table(self, tmp_path, capsys):
        assert main(["disagg", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "colocated" in out and "disagg" in out
        assert "p99_itl_ms" in out and "KV handoffs" in out
        assert (tmp_path / "disagg.txt").exists()

    def test_trace_scenario(self, tmp_path, capsys):
        trace_path = tmp_path / "disagg.jsonl"
        assert main(["trace", "disagg", "--out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario=disagg" in out
        assert "transfer" in out  # the new latency tile
        assert "KV_TRANSFER_START" in trace_path.read_text()


class TestServeSubcommands:
    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "quantum"])

    def test_serve_runs_for_duration(self, capsys):
        assert main([
            "serve", "--backend", "sim", "--port", "0", "--duration", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving backend=sim" in out

    def test_loadgen_in_process_sim(self, capsys):
        assert main([
            "loadgen", "--backend", "sim", "--clients", "8", "--seed", "0",
            "--cancel-fraction", "0", "--abort-fraction", "0",
            "--slow-fraction", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "# loadgen backend=sim clients=8 seed=0" in out
        assert "by_status: {'finished': 8}" in out

    def test_loadgen_metrics_flag_prints_prometheus(self, capsys):
        assert main([
            "loadgen", "--backend", "functional", "--clients", "4",
            "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_requests_admitted_total" in out

    def test_trace_serve_scenario(self, tmp_path, capsys):
        trace_path = tmp_path / "serve.jsonl"
        assert main(["trace", "serve", "--out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario=serve" in out
        text = trace_path.read_text()
        assert "CONNECT" in text and "SHED" in text


class TestPerfSubcommand:
    def test_scenario_default_and_choices(self):
        parser = build_parser()
        assert parser.parse_args(["perf"]).scenario == "fig13_quick"
        for name in ("fig13_quick", "fig13_1m", "all"):
            assert parser.parse_args(["perf", "--scenario", name]).scenario == name

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--scenario", "fig99_huge"])

    def test_scale_scenario_smoke(self, tmp_path, monkeypatch, capsys):
        """``repro perf --scenario fig13_1m`` runs the wall-budget row
        (shrunk to 500 requests so tier-1 stays fast)."""
        import repro.bench.perf_gate as pg

        monkeypatch.setitem(
            pg.DEFAULT_THRESHOLDS["budgets"]["fig13_1m"], "fraction", 0.0005
        )
        # Sidestep the checked-in JSON: its budgets would merge over the
        # shrunken fraction and run the full 2 % smoke.
        monkeypatch.setattr(pg, "BENCH_JSON", tmp_path / "no_such.json")
        rc = main([
            "perf", "--scenario", "fig13_1m", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig13_1m" in out
        assert "fig13_1m" in (tmp_path / "perf_gate.txt").read_text()


class TestSpecSubcommand:
    @pytest.mark.parametrize("bad", ["0", "-3", "banana"])
    def test_bad_draft_len_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spec", "--draft-len", bad])

    def test_ablation_table(self, tmp_path, capsys):
        assert main(["spec", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "acceptance" in out and "speedup" in out
        assert "break-even" in out
        saved = tmp_path / "spec.txt"
        assert saved.exists()
        assert "baseline_itl_ms" in saved.read_text()

    def test_trace_scenario(self, tmp_path, capsys):
        trace_path = tmp_path / "spec.jsonl"
        assert main(["trace", "spec", "--out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario=spec" in out
        text = trace_path.read_text()
        assert "SPEC_DRAFT" in text
        assert "SPEC_VERIFY" in text
        assert "SPEC_ROLLBACK" in text


class TestSloSubcommand:
    def test_deadline_flags_parsed(self):
        args = build_parser().parse_args(
            ["slo", "--ttft-deadline", "0.5", "--itl-deadline", "0.05"]
        )
        assert args.ttft_deadline == 0.5
        assert args.itl_deadline == 0.05

    def test_ablation_table(self, tmp_path, capsys):
        assert main(["slo", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "attainment" in out and "cost_hr" in out
        assert "homo 4xA100" in out and "hetero H100+A100+4xL4" in out
        saved = tmp_path / "slo.txt"
        assert saved.exists()
        assert "equal spend" in saved.read_text()

    def test_trace_scenario(self, tmp_path, capsys):
        trace_path = tmp_path / "slo.jsonl"
        assert main(["trace", "slo", "--out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario=slo" in out
        text = trace_path.read_text()
        assert "SLO_ADMIT" in text
        assert "SLO_SHED" in text
        assert "SCALE_UP" in text
        assert "SCALE_DOWN" in text


class TestTraceScenarioChoices:
    def test_every_registered_scenario_is_a_choice(self):
        parser = build_parser()
        for name in ("single_gpu", "cluster_migration", "faults", "disagg",
                     "serve", "spec", "slo"):
            assert parser.parse_args(["trace", name]).scenario == name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "warpdrive"])


class TestAdaptersSubcommand:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapters"])

    def test_tiers_flag_repeatable(self):
        args = build_parser().parse_args(
            ["adapters", "simulate-cache", "--tiers", "4", "--tiers", "2:8"]
        )
        assert args.tiers == ["4", "2:8"]

    def test_bad_tiers_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["adapters", "simulate-cache", "--tiers", "banana"])
        with pytest.raises(SystemExit):
            main(["adapters", "simulate-cache", "--tiers", "0:4"])

    def test_list(self, tmp_path, capsys):
        assert main([
            "adapters", "list", "--requests", "40", "--out", str(tmp_path)
        ]) == 0
        out = capsys.readouterr().out
        assert "lora-0" in out and "DISK" in out
        assert (tmp_path / "adapters_list.txt").exists()

    def test_simulate_cache(self, capsys):
        assert main(["adapters", "simulate-cache", "--tiers", "4"]) == 0
        out = capsys.readouterr().out
        assert "cold_ttft_ms" in out and "prefetch on" in out
