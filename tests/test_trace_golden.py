"""Golden-trace harness: the seeded scenarios replay byte-for-byte.

Each scenario in :mod:`repro.obs.scenarios` is run at seed 0 and its
canonical JSONL trace compared — as *bytes* — against a checked-in fixture
under ``tests/golden/``. Any behavioural change to the engine, scheduler,
fault injector or adapter store shows up here as a readable unified diff.

When a change is intentional, regenerate the fixtures::

    REPRO_REGOLD=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py

then review the fixture diff like any other code change
(docs/observability.md covers the workflow).
"""

from __future__ import annotations

import difflib
import os
import pathlib

import pytest

from repro.obs import compute_breakdowns, run_scenario
from repro.obs.tracer import EventKind, TERMINAL_KINDS

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
SCENARIO_NAMES = (
    "single_gpu", "cluster_migration", "faults", "disagg", "serve", "spec",
    "slo",
)
REGOLD = os.environ.get("REPRO_REGOLD", "") not in ("", "0")

# Every scenario must exercise the event kinds it was tuned to cover —
# otherwise a tuning regression could silently hollow out the fixture.
REQUIRED_KINDS = {
    "single_gpu": {
        EventKind.SUBMIT, EventKind.PLACE, EventKind.PREFILL,
        EventKind.DECODE_STEP, EventKind.FINISH,
    },
    "cluster_migration": {
        EventKind.SUBMIT, EventKind.QUEUE, EventKind.PLACE,
        EventKind.ADAPTER_LOAD, EventKind.PREFILL, EventKind.DECODE_STEP,
        EventKind.MIGRATE, EventKind.FINISH,
    },
    "faults": {
        EventKind.SUBMIT, EventKind.QUEUE, EventKind.PLACE,
        EventKind.ADAPTER_LOAD, EventKind.PREFILL, EventKind.DECODE_STEP,
        EventKind.MIGRATE, EventKind.FAULT, EventKind.FINISH,
    },
    "disagg": {
        EventKind.SUBMIT, EventKind.PLACE, EventKind.PREFILL,
        EventKind.KV_TRANSFER_START, EventKind.KV_TRANSFER_DONE,
        EventKind.DECODE_STEP, EventKind.FINISH,
    },
    "serve": {
        EventKind.CONNECT, EventKind.DISCONNECT, EventKind.SHED,
        EventKind.SUBMIT, EventKind.PLACE, EventKind.PREFILL,
        EventKind.DECODE_STEP, EventKind.CANCEL, EventKind.FINISH,
    },
    "spec": {
        EventKind.SUBMIT, EventKind.PLACE, EventKind.PREFILL,
        EventKind.SPEC_DRAFT, EventKind.SPEC_VERIFY, EventKind.SPEC_ROLLBACK,
        EventKind.DECODE_STEP, EventKind.FINISH,
    },
    "slo": {
        EventKind.SUBMIT, EventKind.QUEUE, EventKind.PLACE,
        EventKind.SLO_ADMIT, EventKind.SLO_SHED, EventKind.SHED,
        EventKind.SCALE_UP, EventKind.SCALE_DOWN,
        EventKind.PREFILL, EventKind.DECODE_STEP, EventKind.FINISH,
    },
}


def _golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.jsonl"


def _diff(expected: str, actual: str, name: str) -> str:
    lines = difflib.unified_diff(
        expected.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile=f"golden/{name}.jsonl",
        tofile=f"actual/{name}.jsonl",
        n=2,
    )
    return "".join(lines)


@pytest.fixture(scope="module")
def scenario_results():
    return {name: run_scenario(name, seed=0) for name in SCENARIO_NAMES}


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_trace_matches_golden(scenario_results, name):
    actual = scenario_results[name].tracer.dumps_jsonl()
    path = _golden_path(name)
    if REGOLD:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regolded {path}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"REPRO_REGOLD=1 python -m pytest {__file__}"
    )
    expected = path.read_text()
    if actual != expected:
        raise AssertionError(
            f"{name} trace diverged from its golden fixture "
            f"(REPRO_REGOLD=1 to accept):\n{_diff(expected, actual, name)}"
        )


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_trace_is_deterministic(scenario_results, name):
    """Two fresh runs of the same seed produce byte-identical JSONL."""
    again = run_scenario(name, seed=0)
    assert scenario_results[name].tracer.dumps_jsonl() == again.tracer.dumps_jsonl()


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_covers_required_kinds(scenario_results, name):
    seen = {e.kind for e in scenario_results[name].tracer.events}
    missing = REQUIRED_KINDS[name] - seen
    assert not missing, f"{name} no longer emits {sorted(k.value for k in missing)}"


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_breakdown_components_sum_to_total(scenario_results, name):
    """The acceptance invariant: phase components tile [submit, terminal]
    exactly, for every request in every golden scenario."""
    result = scenario_results[name]
    breakdowns = compute_breakdowns(result.tracer)
    assert breakdowns, f"{name} produced no per-request breakdowns"
    for rid, bd in breakdowns.items():
        assert bd.components_sum() == pytest.approx(bd.total, abs=1e-9), (
            f"{name}/{rid}: components {bd.phases} sum to "
            f"{bd.components_sum()}, end-to-end is {bd.total}"
        )
        assert bd.terminal in ("FINISH", "SHED", "CANCEL"), (
            f"{name}/{rid} never reached a terminal event"
        )


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_every_request_terminates_once(scenario_results, name):
    result = scenario_results[name]
    terminals: "dict[str, int]" = {}
    for event in result.tracer.events:
        if event.kind in TERMINAL_KINDS and event.request_id is not None:
            terminals[event.request_id] = terminals.get(event.request_id, 0) + 1
    submitted = {
        e.request_id for e in result.tracer.events
        if e.kind is EventKind.SUBMIT
    }
    assert set(terminals) == submitted
    dupes = {rid: n for rid, n in terminals.items() if n != 1}
    assert not dupes, f"{name}: requests with != 1 terminal event: {dupes}"
