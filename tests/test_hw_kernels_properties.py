"""Hypothesis property tests of the kernel cost model.

The analytical model backs every figure, so its basic sanity — positivity,
monotonicity in work, superadditivity of splits — is property-tested here
rather than trusted.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.kernels import KernelCostModel, SgmvWorkload
from repro.hw.spec import A100_40G, A100_80G
from repro.models.config import LLAMA2_7B
from repro.models.perf import decode_step_workload, model_step_latency

kcm = KernelCostModel(A100_80G)

dims = st.integers(1, 8192)
small = st.integers(1, 64)


class TestGemmProperties:
    @given(m=small, n=dims, k=dims)
    @settings(max_examples=60, deadline=None)
    def test_positive(self, m, n, k):
        assert kcm.gemm(m, n, k) > 0

    @given(m=small, n=dims, k=dims)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_every_dim(self, m, n, k):
        base = kcm.gemm(m, n, k)
        assert kcm.gemm(m + 1, n, k) >= base
        assert kcm.gemm(m, n + 1, k) >= base
        assert kcm.gemm(m, n, k + 1) >= base

    @given(m=small, n=dims, k=dims)
    @settings(max_examples=40, deadline=None)
    def test_fusion_beats_two_launches(self, m, n, k):
        # One (m, n, 2k) GEMM is never slower than two (m, n, k) GEMMs:
        # splitting pays a second launch for the same total work.
        assert kcm.gemm(m, n, 2 * k) <= 2 * kcm.gemm(m, n, k)


@st.composite
def sgmv_workloads(draw):
    n = draw(st.integers(1, 12))
    segs = tuple(draw(st.integers(1, 8)) for _ in range(n))
    h_in = draw(st.sampled_from([16, 128, 4096]))
    h_out = draw(st.sampled_from([16, 128, 4096]))
    return SgmvWorkload(segments=segs, h_in=h_in, h_out=h_out)


class TestSgmvProperties:
    @given(sgmv_workloads(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_positive_and_standalone_never_cheaper(self, work, standalone):
        t = kcm.sgmv(work, standalone=standalone)
        assert t > 0
        assert kcm.sgmv(work, standalone=True) >= kcm.sgmv(work, standalone=False)

    @given(sgmv_workloads())
    @settings(max_examples=60, deadline=None)
    def test_adding_a_model_never_cheaper(self, work):
        bigger = SgmvWorkload(
            segments=work.segments + (1,), h_in=work.h_in, h_out=work.h_out
        )
        assert kcm.sgmv(bigger) >= kcm.sgmv(work) * 0.999

    @given(st.integers(1, 64), st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=40, deadline=None)
    def test_lora_addon_monotone_in_rank(self, bs, rank):
        segs = [1] * bs
        assert kcm.lora_addon(segs, 4096, 4096, rank * 2) >= kcm.lora_addon(
            segs, 4096, 4096, rank
        )

    @given(st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_weight_sharing_never_hurts(self, bs):
        # One shared model is never slower than bs distinct models.
        shared = kcm.lora_addon([bs], 4096, 4096, 16)
        distinct = kcm.lora_addon([1] * bs, 4096, 4096, 16)
        assert shared <= distinct * 1.001


class TestAttentionProperties:
    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_decode_monotone_in_history(self, kv_lens):
        base = kcm.attention_decode(kv_lens, 32, 128)
        longer = kcm.attention_decode([l + 64 for l in kv_lens], 32, 128)
        assert longer >= base

    @given(st.integers(1, 4096))
    @settings(max_examples=40, deadline=None)
    def test_prefill_flash_never_slower(self, seq):
        assert kcm.attention_prefill(seq, 32, 128, flash=True) <= kcm.attention_prefill(
            seq, 32, 128, flash=False
        )


class TestStepLatencyProperties:
    @given(st.integers(1, 32), st.integers(1, 2048))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_batch_and_history(self, bs, kv):
        t = model_step_latency(LLAMA2_7B, kcm, decode_step_workload([kv] * bs))
        t_more = model_step_latency(
            LLAMA2_7B, kcm, decode_step_workload([kv] * (bs + 1))
        )
        t_longer = model_step_latency(
            LLAMA2_7B, kcm, decode_step_workload([kv + 128] * bs)
        )
        assert t_more >= t
        assert t_longer >= t

    @given(st.integers(1, 16), st.integers(64, 1024))
    @settings(max_examples=20, deadline=None)
    def test_slower_memory_means_slower_steps(self, bs, kv):
        fast = model_step_latency(
            LLAMA2_7B, KernelCostModel(A100_80G), decode_step_workload([kv] * bs)
        )
        slow = model_step_latency(
            LLAMA2_7B, KernelCostModel(A100_40G), decode_step_workload([kv] * bs)
        )
        assert slow >= fast  # A100-40G has lower HBM bandwidth

    def test_throughput_per_token_improves_with_batching(self):
        t1 = model_step_latency(LLAMA2_7B, kcm, decode_step_workload([512]))
        t32 = model_step_latency(LLAMA2_7B, kcm, decode_step_workload([512] * 32))
        assert t32 / 32 < t1 / 2  # per-token cost at bs32 far below bs1
