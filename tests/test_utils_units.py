"""Tests for repro.utils.units formatting helpers."""

import pytest

from repro.utils.units import (
    GB,
    GIB,
    KIB,
    MIB,
    MS,
    US,
    format_bytes,
    format_duration,
)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(KIB) == "1.00 KiB"

    def test_mib(self):
        assert format_bytes(3 * MIB) == "3.00 MiB"

    def test_gib(self):
        assert format_bytes(80 * GIB) == "80.00 GiB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_negative(self):
        assert format_bytes(-KIB) == "-1.00 KiB"

    def test_fractional(self):
        assert format_bytes(1536) == "1.50 KiB"


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(2.5) == "2.500 s"

    def test_milliseconds(self):
        assert format_duration(30 * MS) == "30.00 ms"

    def test_microseconds(self):
        assert format_duration(37 * US) == "37.0 us"

    def test_nanoseconds(self):
        assert format_duration(5e-9) == "5.0 ns"

    def test_negative(self):
        assert format_duration(-1 * MS) == "-1.00 ms"


class TestConstants:
    def test_si_vs_binary(self):
        assert GB == 10**9
        assert GIB == 2**30
        assert GIB > GB

    def test_time_units(self):
        assert MS == pytest.approx(1e-3)
        assert US == pytest.approx(1e-6)
