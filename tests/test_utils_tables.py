"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [10, 20]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All lines same width.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="Figure 8")
        assert out.splitlines()[0] == "Figure 8"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000012], [1044.0], [3.25]])
        assert "1.2e-05" in out
        assert "3.25" in out

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
