"""Tiny-scale smoke tests of the serving figure runners (Figs 11-13).

The full-size versions run under ``pytest benchmarks/``; these keep the
runners covered by the plain test suite with second-scale budgets.
"""

import pytest

from repro.baselines.framework import PUNICA, VLLM
from repro.bench.fig11_textgen import run_fig11
from repro.bench.fig12_tp70b import run_fig12
from repro.bench.fig13_cluster import Fig13Scale, run_fig13
from repro.models.config import LLAMA2_7B


class TestFig11Smoke:
    def test_two_system_tiny_run(self):
        table = run_fig11(
            configs=(LLAMA2_7B,), systems=(VLLM, PUNICA), n_requests=12, seed=0
        )
        assert len(table.rows) == 4 * 2  # four workloads x two systems
        tput = {(r[1], r[2]): r[3] for r in table.rows}
        assert tput[("distinct", "punica")] > tput[("distinct", "vllm")]

    def test_throughputs_positive(self):
        table = run_fig11(configs=(LLAMA2_7B,), systems=(PUNICA,), n_requests=6)
        assert all(v > 0 for v in table.column("throughput_tok_s"))


class TestFig12Smoke:
    def test_tiny_run(self):
        table = run_fig12(n_requests=8, seed=0)
        assert len(table.rows) == 4 * 2
        tput = {(r[0], r[1]): r[2] for r in table.rows}
        assert tput[("distinct", "punica")] > tput[("distinct", "vllm")]


class TestFig13Smoke:
    def test_tiny_scale(self):
        scale = Fig13Scale(num_gpus=2, duration=30.0, peak_rate=4.0, bucket=10.0)
        table = run_fig13(scale=scale, seed=0)
        assert len(table.rows) >= 3
        assert any(r[2] > 0 for r in table.rows)  # some throughput recorded
        assert any("finished" in n for n in table.notes)
