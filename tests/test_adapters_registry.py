"""Tests for the tiered adapter registry (metadata, popularity, residency)."""

import pytest

from repro.adapters.registry import (
    AdapterRegistry,
    HostTierSpec,
    Tier,
    register_trace_adapters,
)
from repro.models.config import LLAMA2_7B
from repro.utils.units import MB
from repro.workloads.trace import generate_trace


class TestHostTierSpec:
    def test_staging_time(self):
        host = HostTierSpec(bandwidth=1e9, latency=0.001)
        assert host.staging_time(1e9) == pytest.approx(1.001)
        assert host.staging_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HostTierSpec(bandwidth=0)
        with pytest.raises(ValueError):
            HostTierSpec(capacity_bytes=0)


class TestRegistration:
    def test_register_and_get(self):
        reg = AdapterRegistry()
        meta = reg.register("a", rank=16, nbytes=80 * MB)
        assert reg.get("a") is meta
        assert "a" in reg and len(reg) == 1

    def test_nbytes_from_config(self):
        reg = AdapterRegistry()
        meta = reg.register("a", rank=16, config=LLAMA2_7B)
        assert meta.nbytes == float(LLAMA2_7B.lora_bytes(16))

    def test_idempotent_identical(self):
        reg = AdapterRegistry()
        m1 = reg.register("a", rank=16, nbytes=80 * MB)
        m2 = reg.register("a", rank=16, nbytes=80 * MB)
        assert m1 is m2

    def test_conflicting_reregistration_rejected(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=80 * MB)
        with pytest.raises(ValueError):
            reg.register("a", rank=32, nbytes=80 * MB)

    def test_unknown_adapter(self):
        with pytest.raises(KeyError):
            AdapterRegistry().get("ghost")

    def test_needs_nbytes_or_config(self):
        with pytest.raises(ValueError):
            AdapterRegistry().register("a", rank=16)


class TestPopularity:
    def test_ewma_rate_tracks_arrivals(self):
        reg = AdapterRegistry(ewma_alpha=1.0)  # no smoothing: rate = 1/gap
        reg.register("a", rank=16, nbytes=1 * MB)
        reg.record_request("a", 0.0)
        reg.record_request("a", 0.5)
        assert reg.get("a").rate(0.5) == pytest.approx(2.0)

    def test_rate_decays_with_staleness(self):
        reg = AdapterRegistry(ewma_alpha=1.0)
        reg.register("a", rank=16, nbytes=1 * MB)
        reg.record_request("a", 0.0)
        reg.record_request("a", 0.5)
        # 10s of silence: the effective interval is the 10s gap, not 0.5s.
        assert reg.get("a").rate(10.5) == pytest.approx(0.1)

    def test_hot_adapters_ordering(self):
        reg = AdapterRegistry(ewma_alpha=1.0)
        for lid in ("slow", "fast"):
            reg.register(lid, rank=16, nbytes=1 * MB)
        for t in (0.0, 2.0):
            reg.record_request("slow", t)
        for t in (0.0, 0.5, 1.0, 1.5, 2.0):
            reg.record_request("fast", t)
        hot = reg.hot_adapters(2.0)
        assert [m.lora_id for m in hot] == ["fast", "slow"]

    def test_prior_rate_seeds_ewma(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=1 * MB, prior_rate=4.0)
        assert reg.get("a").rate(0.0) == pytest.approx(4.0)

    def test_never_requested_rate_zero(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=1 * MB)
        assert reg.get("a").rate(100.0) == 0.0


class TestTierStateMachine:
    def test_starts_on_disk(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=1 * MB)
        assert reg.tier("a") is Tier.DISK

    def test_ensure_host_promotes_and_prices(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=30 * MB)
        ready = reg.ensure_host("a", now=1.0)
        assert reg.tier("a") is Tier.HOST
        assert ready == pytest.approx(1.0 + reg.host.staging_time(30 * MB))

    def test_ensure_host_idempotent(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=30 * MB)
        r1 = reg.ensure_host("a", now=0.0)
        r2 = reg.ensure_host("a", now=5.0)  # already staged: no new read
        assert r1 == r2

    def test_gpu_notes_drive_tier(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=1 * MB)
        reg.ensure_host("a", now=0.0)
        reg.note_gpu_resident("a", "gpu0")
        assert reg.tier("a") is Tier.GPU
        assert reg.tier("a", gpu_id="gpu0") is Tier.GPU
        assert reg.tier("a", gpu_id="gpu1") is Tier.HOST
        reg.note_gpu_evicted("a", "gpu0")
        assert reg.tier("a") is Tier.HOST

    def test_drop_host_demotes(self):
        reg = AdapterRegistry()
        reg.register("a", rank=16, nbytes=1 * MB)
        reg.ensure_host("a", now=0.0)
        reg.drop_host("a")
        assert reg.tier("a") is Tier.DISK


class TestHostEviction:
    def _bounded(self, slots: int) -> AdapterRegistry:
        return AdapterRegistry(host=HostTierSpec(capacity_bytes=slots * 10 * MB))

    def test_lru_eviction(self):
        reg = self._bounded(2)
        for lid in ("a", "b", "c"):
            reg.register(lid, rank=16, nbytes=10 * MB)
        reg.ensure_host("a", now=0.0)
        reg.ensure_host("b", now=1.0)
        reg.ensure_host("c", now=10.0)  # evicts "a" (LRU, settled by now)
        assert not reg.host_resident("a")
        assert reg.host_resident("b") and reg.host_resident("c")
        assert reg.host_evictions == 1

    def test_gpu_pinned_never_evicted(self):
        reg = self._bounded(1)
        reg.register("pinned", rank=16, nbytes=10 * MB)
        reg.register("other", rank=16, nbytes=10 * MB)
        reg.ensure_host("pinned", now=0.0)
        reg.note_gpu_resident("pinned", "gpu0")
        with pytest.raises(MemoryError):
            reg.ensure_host("other", now=100.0)

    def test_in_flight_read_never_evicted(self):
        reg = self._bounded(1)
        reg.register("a", rank=16, nbytes=10 * MB)
        reg.register("b", rank=16, nbytes=10 * MB)
        reg.ensure_host("a", now=0.0)
        with pytest.raises(MemoryError):
            reg.ensure_host("b", now=0.0)  # a's disk read still in flight

    def test_oversized_adapter_clear_error(self):
        reg = self._bounded(1)
        reg.register("big", rank=16, nbytes=100 * MB)
        with pytest.raises(MemoryError, match="never fit"):
            reg.ensure_host("big", now=0.0)


class TestTraceRegistration:
    def test_registers_all_trace_adapters_with_priors(self):
        trace = generate_trace(50, "skewed", seed=0)
        reg = AdapterRegistry()
        metas = register_trace_adapters(reg, trace, LLAMA2_7B)
        assert len(reg) == trace.num_lora_models == len(metas)
        # The most popular adapter has the highest seeded rate.
        hot = reg.hot_adapters(0.0, limit=1)
        counts = {}
        for spec in trace:
            counts[spec.lora_id] = counts.get(spec.lora_id, 0) + 1
        assert hot[0].lora_id == max(counts, key=counts.get)
