"""Direct unit tests for the compute backends."""

import numpy as np
import pytest

from repro.core.batch import BatchEntry, plan_batch
from repro.core.lora import LoraRegistry, random_lora_weights
from repro.hw.spec import A100_40G, A100_80G
from repro.models.config import LLAMA2_7B, LLAMA2_70B, tiny_config
from repro.models.perf import PerfFlags
from repro.models.tp import TensorParallelConfig
from repro.hw.interconnect import NVLINK_A100
from repro.models.weights import random_llama_weights
from repro.runtime.backend import NumpyBackend, SimulatedBackend, workload_from_plan
from repro.runtime.request import Request
from repro.utils.units import GIB
from repro.workloads.trace import RequestSpec


def prefill(rid, lora, n):
    return BatchEntry(request_id=rid, lora_id=lora, num_tokens=n, is_prefill=True)


def decode(rid, lora):
    return BatchEntry(request_id=rid, lora_id=lora, num_tokens=1, is_prefill=False)


class TestWorkloadFromPlan:
    def test_mixed_batch(self):
        plan = plan_batch([prefill("p", "a", 5), decode("d1", "a"), decode("d2", "b")])
        work = workload_from_plan(
            plan, {"p": 0, "d1": 10, "d2": 20}, serve_lora=True, lora_rank=16
        )
        assert work.prefill_lens == (5,)
        assert sorted(work.decode_kv_lens) == [10, 20]
        assert sum(work.lora_segments) == 7

    def test_backbone_only(self):
        plan = plan_batch([decode("d", "a")])
        work = workload_from_plan(plan, {"d": 3}, serve_lora=False, lora_rank=16)
        assert work.lora_segments is None


class TestSimulatedBackend:
    def test_kv_capacity_derived_from_hbm(self):
        backend = SimulatedBackend(LLAMA2_7B, gpu=A100_80G)
        derived = backend.kv.total_pages * backend.kv.page_size
        # 80 GiB - ~12.6 GiB weights - 2 GiB workspace over 512 KiB/token.
        expected_bytes = A100_80G.hbm_capacity - LLAMA2_7B.weight_bytes() - 2 * GIB
        expected_tokens = expected_bytes / LLAMA2_7B.kv_bytes_per_token()
        assert derived == pytest.approx(expected_tokens, rel=0.01)

    def test_model_too_big_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            SimulatedBackend(LLAMA2_70B, gpu=A100_40G)

    def test_70b_fits_with_tp(self):
        tp = TensorParallelConfig(world_size=8, interconnect=NVLINK_A100)
        backend = SimulatedBackend(LLAMA2_70B, gpu=A100_40G, tp=tp)
        assert backend.kv.total_pages > 0

    def test_execute_returns_distinct_tokens(self):
        backend = SimulatedBackend(LLAMA2_7B)
        plan = plan_batch([decode("a", "m"), decode("b", "m")])
        backend.kv_admit("a", 8)
        backend.kv_admit("b", 8)
        result = backend.execute(plan, {"a": 8, "b": 8})
        assert result.latency > 0
        assert len(set(result.tokens.values())) == 2

    def test_step_overhead_added(self):
        plan = plan_batch([decode("a", "m")])
        fast = SimulatedBackend(LLAMA2_7B, step_overhead=0.0)
        slow = SimulatedBackend(LLAMA2_7B, step_overhead=0.01)
        t_fast = fast.execute(plan, {"a": 8}).latency
        t_slow = slow.execute(plan, {"a": 8}).latency
        assert t_slow == pytest.approx(t_fast + 0.01)

    def test_flags_respected(self):
        plan = plan_batch([decode("a", "m")])
        base = SimulatedBackend(LLAMA2_7B, step_overhead=0.0)
        hf = SimulatedBackend(
            LLAMA2_7B, step_overhead=0.0,
            flags=PerfFlags(fused_layernorm=False, framework_overhead_per_layer=1e-3),
        )
        assert hf.execute(plan, {"a": 8}).latency > base.execute(plan, {"a": 8}).latency

    def test_kv_release_idempotent(self):
        backend = SimulatedBackend(LLAMA2_7B)
        backend.kv_admit("a", 8)
        backend.kv_release("a")
        backend.kv_release("a")  # no error on double release


class TestNumpyBackend:
    def make(self):
        cfg = tiny_config(hidden_size=32, num_layers=1, num_heads=4, vocab_size=32)
        weights = random_llama_weights(cfg, seed=0)
        reg = LoraRegistry()
        reg.register(random_lora_weights("m", 1, cfg.proj_dims(), 4, seed=1))
        return cfg, NumpyBackend(weights, reg, total_pages=32, page_size=4, lora_rank=4)

    def test_requires_request_objects(self):
        _, backend = self.make()
        plan = plan_batch([decode("a", "m")])
        with pytest.raises(ValueError, match="request objects"):
            backend.execute(plan, {"a": 0})

    def test_requires_prompt_tokens(self):
        cfg, backend = self.make()
        req = Request(spec=RequestSpec("a", "m", 0.0, 4, 2))  # no prompt ids
        backend.kv_admit("a", 4)
        plan = plan_batch([prefill("a", "m", 4)])
        with pytest.raises(ValueError, match="prompt tokens"):
            backend.execute(plan, {"a": 0}, requests={"a": req})

    def test_prefill_history_length_checked(self):
        cfg, backend = self.make()
        req = Request(spec=RequestSpec("a", "m", 0.0, 4, 2), prompt_tokens=[1, 2, 3, 4])
        backend.kv_admit("a", 6)
        plan = plan_batch([prefill("a", "m", 6)])  # wrong token count
        with pytest.raises(ValueError, match="history"):
            backend.execute(plan, {"a": 0}, requests={"a": req})

    def test_tokens_in_vocab(self):
        cfg, backend = self.make()
        req = Request(spec=RequestSpec("a", "m", 0.0, 4, 2), prompt_tokens=[1, 2, 3, 4])
        backend.kv_admit("a", 4)
        plan = plan_batch([prefill("a", "m", 4)])
        result = backend.execute(plan, {"a": 0}, requests={"a": req})
        assert 0 <= result.tokens["a"] < cfg.vocab_size
        assert result.latency == 0.0  # no cost model attached

    def test_kv_free_tokens(self):
        _, backend = self.make()
        before = backend.kv_free_tokens()
        backend.kv_admit("a", 8)
        assert backend.kv_free_tokens() == before - 8
