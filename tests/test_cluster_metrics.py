"""Additional tests for cluster metrics aggregation."""

import numpy as np
import pytest

from repro.adapters.registry import Tier
from repro.adapters.store import AdapterEvent
from repro.cluster.metrics import ClusterMetrics, TimeSeries


class TestBucketMean:
    def test_mean_per_bucket(self):
        ts = TimeSeries()
        for t, v in [(0.1, 2.0), (0.2, 4.0), (1.5, 10.0)]:
            ts.record(t, v)
        means = ts.bucket_mean(bucket=1.0, duration=2.0)
        assert means == [(0.0, 3.0), (1.0, 10.0)]

    def test_empty_buckets_zero(self):
        ts = TimeSeries()
        ts.record(2.5, 7.0)
        means = ts.bucket_mean(bucket=1.0, duration=3.0)
        assert means[0] == (0.0, 0.0)
        assert means[2] == (2.0, 7.0)

    def test_len(self):
        ts = TimeSeries()
        assert len(ts) == 0
        ts.record(0.0, 1.0)
        assert len(ts) == 1


class TestClusterMetrics:
    def test_arrival_and_step_recording(self):
        m = ClusterMetrics()
        m.record_arrival(0.5)
        m.record_arrival(1.5)
        m.record_step("gpu0", 0.6, tokens=4, batch_size=2)
        m.record_step("gpu1", 1.6, tokens=8, batch_size=4)
        assert m.total_tokens() == 12
        rates = m.request_rate_series(bucket=1.0, duration=2.0)
        assert rates == [(0.0, 1.0), (1.0, 1.0)]
        tput = m.throughput_series(bucket=1.0, duration=2.0)
        assert tput == [(0.0, 4.0), (1.0, 8.0)]

    def test_per_gpu_batch_series(self):
        m = ClusterMetrics()
        m.record_step("gpu0", 0.1, tokens=1, batch_size=3)
        m.record_step("gpu0", 0.9, tokens=1, batch_size=5)
        series = m.batch_size_series("gpu0", bucket=1.0, duration=1.0)
        assert series == [(0.0, 4.0)]

    def test_unknown_gpu_gives_zeros(self):
        m = ClusterMetrics()
        series = m.batch_size_series("ghost", bucket=1.0, duration=2.0)
        assert all(v == 0.0 for _, v in series)

    def test_empty_total(self):
        assert ClusterMetrics().total_tokens() == 0.0


class TestSearchsortedBucketing:
    def _mask_reference(self, ts, bucket, duration, agg):
        """The pre-optimization per-bucket boolean-mask implementation."""
        edges = np.arange(0.0, duration + bucket, bucket)
        times = np.asarray(ts.times)
        values = np.asarray(ts.values)
        out = []
        for i in range(len(edges) - 1):
            mask = (times >= edges[i]) & (times < edges[i + 1])
            out.append((float(edges[i]), float(agg(values[mask]))))
        return out

    @pytest.mark.parametrize("bucket,duration", [(1.0, 10.0), (0.7, 9.5), (3.0, 7.0)])
    def test_bit_identical_to_mask_reference(self, bucket, duration):
        rng = np.random.default_rng(7)
        ts = TimeSeries()
        for t in np.sort(rng.uniform(0.0, duration * 1.2, size=200)):
            ts.record(float(t), float(rng.normal()))
        assert ts.bucket_sum(bucket, duration) == self._mask_reference(
            ts, bucket, duration, np.sum
        )
        mean = lambda a: float(np.mean(a)) if len(a) else 0.0
        assert ts.bucket_mean(bucket, duration) == self._mask_reference(
            ts, bucket, duration, mean
        )

    def test_samples_past_duration_excluded(self):
        ts = TimeSeries()
        ts.record(0.5, 1.0)
        ts.record(5.5, 100.0)
        assert ts.bucket_sum(1.0, 2.0) == [(0.0, 1.0), (1.0, 0.0)]


class TestAdapterMetrics:
    def test_ingest_sorts_interleaved_store_logs(self):
        m = ClusterMetrics()
        # Two GPUs' logs interleave non-monotonically; ingest must sort.
        m.ingest_adapter_events([
            AdapterEvent(5.0, "load", float(Tier.GPU)),
            AdapterEvent(1.0, "load", float(Tier.DISK)),
            AdapterEvent(3.0, "evict", 1.0),
            AdapterEvent(2.0, "prefetch_issue", 1.0),
            AdapterEvent(4.0, "prefetch_hit", 1.0),
            AdapterEvent(2.5, "pcie", 0.004),
        ])
        assert m.adapter_hit_counts() == {"gpu": 1, "host": 0, "disk": 1}
        assert m.adapter_gpu_hit_rate() == 0.5
        assert m.eviction_count() == 1
        assert m.prefetch_accuracy() == 1.0
        assert m.pcie_busy_seconds() == pytest.approx(0.004)

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError):
            ClusterMetrics().ingest_adapter_events(
                [AdapterEvent(0.0, "teleport", 1.0)]
            )

    def test_pcie_utilization_series(self):
        m = ClusterMetrics()
        m.record_pcie_transfer(0.2, 0.5)
        m.record_pcie_transfer(1.1, 0.25)
        series = m.pcie_utilization_series(bucket=1.0, duration=2.0)
        assert series == [(0.0, 0.5), (1.0, 0.25)]

    def test_empty_summaries(self):
        m = ClusterMetrics()
        assert m.adapter_gpu_hit_rate() == 0.0
        assert m.prefetch_accuracy() == 0.0
        assert m.eviction_count() == 0
        assert m.pcie_busy_seconds() == 0.0
