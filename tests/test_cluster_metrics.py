"""Additional tests for cluster metrics aggregation."""

import pytest

from repro.cluster.metrics import ClusterMetrics, TimeSeries


class TestBucketMean:
    def test_mean_per_bucket(self):
        ts = TimeSeries()
        for t, v in [(0.1, 2.0), (0.2, 4.0), (1.5, 10.0)]:
            ts.record(t, v)
        means = ts.bucket_mean(bucket=1.0, duration=2.0)
        assert means == [(0.0, 3.0), (1.0, 10.0)]

    def test_empty_buckets_zero(self):
        ts = TimeSeries()
        ts.record(2.5, 7.0)
        means = ts.bucket_mean(bucket=1.0, duration=3.0)
        assert means[0] == (0.0, 0.0)
        assert means[2] == (2.0, 7.0)

    def test_len(self):
        ts = TimeSeries()
        assert len(ts) == 0
        ts.record(0.0, 1.0)
        assert len(ts) == 1


class TestClusterMetrics:
    def test_arrival_and_step_recording(self):
        m = ClusterMetrics()
        m.record_arrival(0.5)
        m.record_arrival(1.5)
        m.record_step("gpu0", 0.6, tokens=4, batch_size=2)
        m.record_step("gpu1", 1.6, tokens=8, batch_size=4)
        assert m.total_tokens() == 12
        rates = m.request_rate_series(bucket=1.0, duration=2.0)
        assert rates == [(0.0, 1.0), (1.0, 1.0)]
        tput = m.throughput_series(bucket=1.0, duration=2.0)
        assert tput == [(0.0, 4.0), (1.0, 8.0)]

    def test_per_gpu_batch_series(self):
        m = ClusterMetrics()
        m.record_step("gpu0", 0.1, tokens=1, batch_size=3)
        m.record_step("gpu0", 0.9, tokens=1, batch_size=5)
        series = m.batch_size_series("gpu0", bucket=1.0, duration=1.0)
        assert series == [(0.0, 4.0)]

    def test_unknown_gpu_gives_zeros(self):
        m = ClusterMetrics()
        series = m.batch_size_series("ghost", bucket=1.0, duration=2.0)
        assert all(v == 0.0 for _, v in series)

    def test_empty_total(self):
        assert ClusterMetrics().total_tokens() == 0.0
