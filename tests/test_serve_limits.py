"""Unit tests for per-tenant admission control (repro.serve.limits)."""

import pytest

from repro.serve.limits import (
    AdmissionController,
    Decision,
    TenantPolicy,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_debits(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert bucket.peek(0.0) == 3.0
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)

    def test_refills_at_rate_up_to_burst(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(0.5)  # 0.5 s * 2/s = 1 token back
        assert not bucket.allow(0.5)
        assert bucket.peek(100.0) == 4.0  # capped at burst

    def test_rejection_does_not_debit(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.allow(0.0)
        before = bucket.peek(0.25)
        assert not bucket.allow(0.25)
        assert bucket.peek(0.25) == before

    def test_time_going_backwards_raises(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.peek(5.0)
        with pytest.raises(ValueError):
            bucket.peek(4.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.5)])
    def test_invalid_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestTenantPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(rate=0.0)
        with pytest.raises(ValueError):
            TenantPolicy(burst=0.0)
        with pytest.raises(ValueError):
            TenantPolicy(max_inflight=0)


class TestAdmissionController:
    def controller(self, **kwargs):
        defaults = dict(
            default_policy=TenantPolicy(rate=1.0, burst=2.0, max_inflight=3),
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_admits_until_burst_then_rate_limits(self):
        ctl = self.controller()
        assert ctl.admit("a", 0.0) is Decision.ADMIT
        assert ctl.admit("a", 0.0) is Decision.ADMIT
        assert ctl.admit("a", 0.0) is Decision.RATE_LIMITED
        # One token refills after a second — but in-flight is still 2 < 3.
        assert ctl.admit("a", 1.0) is Decision.ADMIT

    def test_bounded_inflight_sheds_queue_full(self):
        ctl = self.controller(
            default_policy=TenantPolicy(rate=100.0, burst=50.0, max_inflight=2),
        )
        assert ctl.admit("a", 0.0) is Decision.ADMIT
        assert ctl.admit("a", 0.0) is Decision.ADMIT
        assert ctl.admit("a", 0.0) is Decision.QUEUE_FULL
        ctl.release("a")
        assert ctl.admit("a", 0.0) is Decision.ADMIT

    def test_queue_full_does_not_burn_rate_budget(self):
        """Capacity sheds are checked before the bucket: a tenant at its
        in-flight bound keeps its rate tokens for when the queue drains."""
        ctl = self.controller(
            default_policy=TenantPolicy(rate=1.0, burst=1.0, max_inflight=1),
        )
        assert ctl.admit("a", 0.0) is Decision.ADMIT  # burns the only token
        assert ctl.admit("a", 2.0) is Decision.QUEUE_FULL  # bucket refilled, untouched
        ctl.release("a")
        assert ctl.admit("a", 2.0) is Decision.ADMIT  # the refilled token survived

    def test_tenants_are_isolated(self):
        ctl = self.controller()
        assert ctl.admit("a", 0.0) is Decision.ADMIT
        assert ctl.admit("a", 0.0) is Decision.ADMIT
        assert ctl.admit("a", 0.0) is Decision.RATE_LIMITED
        # Tenant b has its own bucket and queue.
        assert ctl.admit("b", 0.0) is Decision.ADMIT
        assert ctl.inflight("a") == 2
        assert ctl.inflight("b") == 1

    def test_per_tenant_policy_overrides_default(self):
        ctl = self.controller(
            tenant_policies={
                "vip": TenantPolicy(rate=100.0, burst=50.0, max_inflight=50)
            },
        )
        for _ in range(10):
            assert ctl.admit("vip", 0.0) is Decision.ADMIT

    def test_global_bound_sheds_overloaded(self):
        ctl = self.controller(
            default_policy=TenantPolicy(rate=100.0, burst=50.0, max_inflight=50),
            max_total_inflight=3,
        )
        for tenant in ("a", "b", "c"):
            assert ctl.admit(tenant, 0.0) is Decision.ADMIT
        assert ctl.admit("d", 0.0) is Decision.OVERLOADED
        ctl.release("b")
        assert ctl.admit("d", 0.0) is Decision.ADMIT
        assert ctl.total_inflight == 3

    def test_unpaired_release_raises(self):
        ctl = self.controller()
        with pytest.raises(ValueError):
            ctl.release("ghost")

    def test_decision_admitted_property(self):
        assert Decision.ADMIT.admitted
        for d in (Decision.RATE_LIMITED, Decision.QUEUE_FULL, Decision.OVERLOADED):
            assert not d.admitted
