"""Tests for the scheduler<->runner message protocol (§6)."""

import pytest

from repro.cluster.protocol import (
    AddRequest,
    CancelAck,
    CancelRequest,
    MessageLog,
    RequestEvicted,
    RequestFinished,
    StepStats,
    TokenChunk,
)
from repro.cluster.runner import GpuRunner
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine


def make_runner(max_batch=4, kv_capacity=None, log=None):
    engine = GpuEngine(
        "gpu0",
        SimulatedBackend(LLAMA2_7B, kv_capacity_bytes=kv_capacity, step_overhead=0.0),
        EngineConfig(max_batch_size=max_batch),
    )
    return GpuRunner(engine, log=log)


def run_until_quiet(runner, now=0.0, limit=500):
    events = []
    for _ in range(limit):
        end = runner.step(now)
        events.extend(runner.poll_events())
        if end is None:
            if runner.engine.is_idle and not runner._inbox:
                break
            now += 2e-3
        else:
            now = end
    return events, now


class TestProtocolValidation:
    def test_add_request_validation(self):
        with pytest.raises(ValueError):
            AddRequest("r", "m", prompt_len=0, response_len=4)

    def test_token_chunk_nonempty(self):
        with pytest.raises(ValueError):
            TokenChunk("r", tokens=(), time=0.0)

    def test_unknown_command_rejected(self):
        with pytest.raises(TypeError):
            make_runner().post("not a command")


class TestRunnerLifecycle:
    def test_tokens_streamed_exactly_once(self):
        runner = make_runner()
        runner.post(AddRequest("r0", "m0", prompt_len=16, response_len=5))
        events, _ = run_until_quiet(runner)
        chunks = [e for e in events if isinstance(e, TokenChunk)]
        streamed = [t for c in chunks if c.request_id == "r0" for t in c.tokens]
        assert len(streamed) == 5
        assert streamed == runner.request("r0").generated_tokens

    def test_finish_event_carries_count(self):
        runner = make_runner()
        runner.post(AddRequest("r0", "m0", prompt_len=16, response_len=3))
        events, _ = run_until_quiet(runner)
        fin = [e for e in events if isinstance(e, RequestFinished)]
        assert len(fin) == 1
        assert fin[0].num_generated == 3

    def test_step_stats_emitted_per_invocation(self):
        runner = make_runner()
        runner.post(AddRequest("r0", "m0", prompt_len=16, response_len=4))
        events, _ = run_until_quiet(runner)
        stats = [e for e in events if isinstance(e, StepStats)]
        assert len(stats) == 4  # prefill + 3 decode invocations
        assert all(s.gpu_id == "gpu0" for s in stats)
        times = [s.start for s in stats]
        assert times == sorted(times)

    def test_commands_apply_at_step_boundary(self):
        runner = make_runner()
        runner.post(AddRequest("r0", "m0", prompt_len=16, response_len=8))
        assert runner.engine.is_idle  # not yet applied
        runner.step(0.0)
        assert not runner.engine.is_idle

    def test_multiple_requests_batch(self):
        runner = make_runner()
        for i in range(3):
            runner.post(AddRequest(f"r{i}", f"m{i}", prompt_len=8, response_len=6))
        events, _ = run_until_quiet(runner)
        stats = [e for e in events if isinstance(e, StepStats)]
        assert max(s.batch_size for s in stats) == 3
        assert max(s.num_lora_segments for s in stats) >= 3


class TestCancellation:
    def test_cancel_acked_once(self):
        runner = make_runner()
        runner.post(AddRequest("r0", "m0", prompt_len=16, response_len=50))
        run_until_quiet(runner, limit=3)
        runner.post(CancelRequest("r0"))
        runner.step(1.0)
        acks = [e for e in runner.poll_events() if isinstance(e, CancelAck)]
        assert [a.request_id for a in acks] == ["r0"]
        assert runner.engine.is_idle

    def test_cancel_with_requeue_keeps_request_object(self):
        runner = make_runner()
        runner.post(AddRequest("r0", "m0", prompt_len=16, response_len=50))
        run_until_quiet(runner, limit=5)
        generated_before = list(runner.request("r0").generated_tokens)
        assert generated_before
        runner.post(CancelRequest("r0", requeue=True))
        runner.step(1.0)
        req = runner.request("r0")  # still known: scheduler will re-place it
        assert req.generated_tokens == generated_before

    def test_migration_between_runners_via_protocol(self):
        # Full §5.3 flow over the message protocol only.
        src = make_runner()
        dst = make_runner()
        src.post(AddRequest("r0", "m0", prompt_len=16, response_len=10))
        _, now = run_until_quiet(src, limit=5)
        prefix = tuple(src.request("r0").generated_tokens)
        assert prefix
        src.post(CancelRequest("r0", requeue=True))
        src.step(now)
        req = src.request("r0")
        dst.post(
            AddRequest(
                "r0", "m0", prompt_len=req.spec.prompt_len,
                response_len=req.spec.response_len, generated_prefix=prefix,
            )
        )
        # Hand the same request object over (in-process shortcut): instead,
        # verify dst rebuilt it from the wire message alone.
        events, _ = run_until_quiet(dst, now=now)
        rebuilt = dst.request("r0")
        assert rebuilt.num_generated == req.spec.response_len
        assert rebuilt.generated_tokens[: len(prefix)] == list(prefix)


class TestEviction:
    def test_eviction_event_emitted(self):
        bpt = LLAMA2_7B.kv_bytes_per_token()
        runner = make_runner(kv_capacity=48 * bpt)
        runner.post(AddRequest("old", "m0", prompt_len=16, response_len=40))
        runner.post(AddRequest("new", "m0", prompt_len=16, response_len=40))
        events, _ = run_until_quiet(runner, limit=120)
        evictions = [e for e in events if isinstance(e, RequestEvicted)]
        # Newest evicted first (FCFS); with no scheduler re-placing it,
        # "old" eventually exhausts the pool alone and self-evicts too.
        assert evictions
        assert evictions[0].request_id == "new"


class TestMessageLog:
    def test_log_captures_traffic(self):
        log = MessageLog()
        runner = make_runner(log=log)
        runner.post(AddRequest("r0", "m0", prompt_len=8, response_len=2))
        run_until_quiet(runner)
        assert len(log.commands) == 1
        assert len(log.events_of_type(TokenChunk)) == 2
        assert len(log.events_of_type(RequestFinished)) == 1
