"""Unit tests for the metrics primitives and the registry's exports."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_total(self):
        c = Counter("hits_total", "hits")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total() == 3.5

    def test_labels_split_series(self):
        c = Counter("loads_total", "loads", label_names=("tier",))
        c.inc(tier="gpu")
        c.inc(3, tier="host")
        assert c.value(tier="gpu") == 1.0
        assert c.value(tier="host") == 3.0
        assert c.value(tier="disk") == 0.0
        assert c.total() == 4.0

    def test_rejects_negative_and_bad_labels(self):
        c = Counter("n_total", "n", label_names=("gpu",))
        with pytest.raises(ValueError):
            c.inc(-1, gpu="g0")
        with pytest.raises(ValueError):
            c.inc(1)  # missing label
        with pytest.raises(ValueError):
            c.inc(1, gpu="g0", extra="x")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad-name", "nope")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "queue depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0
        g.set(-3)  # gauges may go negative
        assert g.value() == -3.0


class TestHistogram:
    def test_observe_buckets_cumulatively(self):
        h = Histogram("lat", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.mean() == pytest.approx(6.05 / 4)
        lines = h.render()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1.0"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert "lat_count 4" in lines

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=())
        assert Histogram("h", "").buckets == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1

    def test_namespace_prefix_applied_once(self):
        reg = MetricsRegistry(namespace="repro")
        c = reg.counter("x_total")
        assert c.name == "repro_x_total"
        assert reg.counter("repro_x_total") is c
        assert "x_total" in reg and "repro_x_total" in reg

    def test_kind_and_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("gpu",))
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labels=("tier",))

    def test_to_json_is_serializable_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.histogram("a_seconds").observe(0.2)
        snapshot = reg.to_json()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)  # must be plain data

    def test_prometheus_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labels=("gpu",)).inc(gpu="g0")
        reg.gauge("depth", "queue depth").set(2)
        reg.histogram("lat_seconds", "latency", buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP repro_req_total requests" in text
        assert "# TYPE repro_req_total counter" in text
        assert 'repro_req_total{gpu="g0"} 1.0' in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_assert_finite_catches_poison(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("nan"))
        with pytest.raises(ValueError):
            reg.assert_finite()
