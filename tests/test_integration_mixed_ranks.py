"""Integration: serving tenants with *different* LoRA ranks in one batch.

The paper evaluates a single rank (16); its follow-ons serve mixed ranks
by zero-padding to the batch max. The functional engine now does the same
— these tests prove a rank-2, a rank-4 and a rank-8 tenant can decode in
one invocation with every token still matching that tenant's own
merged-weight reference.
"""

import numpy as np

from repro.core.lora import LoraRegistry, random_lora_weights
from repro.models.config import tiny_config
from repro.models.llama import reference_forward_full
from repro.models.weights import random_llama_weights
from repro.runtime.backend import NumpyBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

CFG = tiny_config(hidden_size=32, num_layers=2, num_heads=4, vocab_size=64)
RANKS = {"lora-0": 2, "lora-1": 4, "lora-2": 8}


def make_stack():
    weights = random_llama_weights(CFG, seed=0)
    registry = LoraRegistry()
    for i, (mid, rank) in enumerate(RANKS.items()):
        registry.register(
            random_lora_weights(mid, CFG.num_layers, CFG.proj_dims(), rank, seed=70 + i)
        )
    backend = NumpyBackend(weights, registry, total_pages=128, page_size=4)
    engine = GpuEngine("gpu0", backend, EngineConfig(max_batch_size=8))
    return weights, registry, engine


class TestMixedRankServing:
    def test_three_ranks_one_batch_exact(self):
        weights, registry, engine = make_stack()
        lengths = ShareGptLengths(max_prompt_len=6, max_response_len=4)
        trace = generate_trace(3, "distinct", seed=9, lengths=lengths)
        reqs = requests_from_trace(trace, with_prompt_tokens=True, vocab_size=CFG.vocab_size)
        result = serve_requests(engine, reqs)
        assert result.requests_finished == 3
        # The three tenants (ranks 2/4/8) really shared invocations.
        assert any(s.num_lora_segments >= 2 for s in result.steps)
        for req in reqs:
            history = list(req.prompt_tokens)
            for tok in req.generated_tokens:
                logits = reference_forward_full(
                    weights, np.asarray(history), registry, req.lora_id
                )
                assert tok == int(np.argmax(logits)), req.lora_id
                history.append(tok)

    def test_all_finish(self):
        _, _, engine = make_stack()
        lengths = ShareGptLengths(max_prompt_len=6, max_response_len=4)
        trace = generate_trace(6, "uniform", seed=11, lengths=lengths)
        reqs = requests_from_trace(trace, with_prompt_tokens=True, vocab_size=CFG.vocab_size)
        serve_requests(engine, reqs)
        assert all(r.state is RequestState.FINISHED for r in reqs)
