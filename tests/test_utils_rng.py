"""Tests for seeded RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import new_rng, spawn_rngs


class TestNewRng:
    def test_seed_reproducible(self):
        a = new_rng(42).standard_normal(8)
        b = new_rng(42).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = new_rng(1).standard_normal(8)
        b = new_rng(2).standard_normal(8)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(new_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_reproducible(self):
        a = [g.standard_normal(4) for g in spawn_rngs(7, 3)]
        b = [g.standard_normal(4) for g in spawn_rngs(7, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_children_independent(self):
        g1, g2 = spawn_rngs(7, 2)
        assert not np.array_equal(g1.standard_normal(16), g2.standard_normal(16))

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
