"""Tests for the client-facing frontend (submit / stream / cancel)."""

import pytest

from repro.cluster.frontend import Frontend
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState


def make_frontend(n_gpus=2):
    engines = [
        GpuEngine(
            f"gpu{i}",
            SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
            EngineConfig(max_batch_size=4),
        )
        for i in range(n_gpus)
    ]
    return Frontend(ClusterSimulator(engines))


class TestSubmit:
    def test_submit_and_complete(self):
        fe = make_frontend()
        handle = fe.submit("tenant-a", prompt_len=16, response_len=5)
        fe.run()
        assert handle.state is RequestState.FINISHED
        assert len(handle.tokens) == 5

    def test_streaming_callback_per_token(self):
        fe = make_frontend()
        streamed = []
        fe.on_token(lambda rid, tok, t: streamed.append((rid, tok, t)))
        h1 = fe.submit("a", prompt_len=8, response_len=3)
        h2 = fe.submit("b", prompt_len=8, response_len=4)
        fe.run()
        assert len(streamed) == 7
        assert {rid for rid, _, _ in streamed} == {h1.request_id, h2.request_id}
        times = [t for _, _, t in streamed]
        assert times == sorted(times)

    def test_streamed_tokens_match_request(self):
        fe = make_frontend()
        handle = fe.submit("a", prompt_len=8, response_len=6)
        fe.run()
        assert handle.tokens == handle.request.generated_tokens

    def test_future_arrival_time(self):
        fe = make_frontend()
        handle = fe.submit("a", prompt_len=8, response_len=2, at_time=5.0)
        fe.run()
        assert handle.request.first_token_time > 5.0

    def test_duplicate_id_rejected(self):
        fe = make_frontend()
        fe.submit("a", 8, 2, request_id="dup")
        with pytest.raises(ValueError):
            fe.submit("a", 8, 2, request_id="dup")


class TestCancel:
    def test_cancel_queued_request(self):
        fe = make_frontend(n_gpus=1)
        # Fill the single 4-slot GPU, then queue one more and cancel it.
        for i in range(4):
            fe.submit("a", 16, 30, request_id=f"fill{i}")
        victim = fe.submit("a", 16, 30, request_id="victim")
        fe.run(until=0.001)  # submissions land, victim queued
        fe.cancel("victim")
        fe.run()
        assert victim.state is RequestState.CANCELLED
        assert len(victim.tokens) == 0
        for i in range(4):
            assert fe.handle(f"fill{i}").state is RequestState.FINISHED

    def test_cancel_running_request(self):
        fe = make_frontend()
        victim = fe.submit("a", 16, 500, request_id="victim")
        other = fe.submit("b", 16, 5, request_id="other")
        fe.run(until=0.3)  # both running, victim mid-generation
        assert victim.state is RequestState.RUNNING
        fe.cancel("victim")
        fe.run()
        assert victim.state is RequestState.CANCELLED
        assert other.state is RequestState.FINISHED

    def test_cancel_finished_is_noop(self):
        fe = make_frontend()
        h = fe.submit("a", 8, 2)
        fe.run()
        fe.cancel(h.request_id)  # no error
        assert h.state is RequestState.FINISHED

    def test_cancel_unknown(self):
        with pytest.raises(KeyError):
            make_frontend().cancel("ghost")
