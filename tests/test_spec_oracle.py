"""Differential oracle: speculative decoding is token-identical to greedy.

On the functional NumPy backend, speculative decoding is real draft-then-
verify: a truncated-layer draft model proposes ``draft_len`` tokens and
the full target model verifies the chunk, accepting the longest prefix
that matches its own greedy choice plus one bonus/correction token. The
committed token stream is therefore *provably* identical to plain greedy
decoding — the target's argmax at every position is what both modes emit.

This suite enforces that oracle: the same trace is served with the lane
disarmed (the baseline) and armed, across seeds and mixed adapter ranks,
and the generated token sequences must match exactly. Canaries assert
the speculative lane actually ran (multi-token rounds committed) and
that every KV page — target and draft — is released afterwards, so a
rollback leak cannot hide behind a passing token comparison.
"""

from __future__ import annotations

import pytest

from repro.core.lora import LoraRegistry, random_lora_weights
from repro.models.config import tiny_config
from repro.models.weights import random_llama_weights
from repro.runtime.backend import NumpyBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.runtime.spec import SpecConfig
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


def build_engine(seed: int, spec: "SpecConfig | None", ranks=(4, 8),
                 eos_token_id=None):
    """A functional engine over a tiny model with mixed-rank adapters."""
    cfg = tiny_config(hidden_size=32, num_layers=2, num_heads=4, vocab_size=64)
    weights = random_llama_weights(cfg, seed=seed)
    registry = LoraRegistry()
    for i, rank in enumerate(ranks):
        registry.register(
            random_lora_weights(
                f"lora-{i}", cfg.num_layers, cfg.proj_dims(), rank,
                seed=50 + i,
            )
        )
    backend = NumpyBackend(
        weights, registry, total_pages=256, page_size=4,
        lora_rank=max(ranks),
    )
    engine = GpuEngine(
        "gpu0", backend,
        EngineConfig(max_batch_size=8, spec=spec, eos_token_id=eos_token_id),
    )
    return cfg, backend, engine


def serve_trace(seed: int, spec: "SpecConfig | None", n_requests=4,
                response_len=12, ranks=(4, 8)):
    cfg, backend, engine = build_engine(seed, spec, ranks=ranks)
    lengths = ShareGptLengths(max_prompt_len=8, max_response_len=response_len)
    trace = generate_trace(n_requests, "uniform", seed=seed, lengths=lengths)
    reqs = requests_from_trace(
        trace, with_prompt_tokens=True, vocab_size=cfg.vocab_size
    )
    serve_requests(engine, reqs)
    return backend, engine, reqs


def assert_no_leaks(backend: NumpyBackend):
    """Every target and draft KV page is back in the free list."""
    assert backend.kv_data.allocator.used_pages == 0
    if backend._draft_kv is not None:
        assert backend._draft_kv.allocator.used_pages == 0
        assert not backend._draft_synced


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_spec_matches_greedy_oracle(seed):
    """Armed and disarmed runs emit identical token streams per request."""
    _, _, baseline = serve_trace(seed, None)
    backend, engine, armed = serve_trace(
        seed, SpecConfig(draft_len=4, seed=seed)
    )
    want = {r.request_id: tuple(r.generated_tokens) for r in baseline}
    got = {r.request_id: tuple(r.generated_tokens) for r in armed}
    assert got == want
    for req in armed:
        assert req.state is RequestState.FINISHED
    # Canary: the speculative lane actually ran multi-token rounds —
    # fewer rounds than tokens means bursts were committed.
    assert engine.spec_rounds > 0
    total_tokens = sum(len(toks) for toks in got.values())
    assert engine.spec_rounds < total_tokens
    assert_no_leaks(backend)


@pytest.mark.parametrize("draft_len", [1, 3, 6])
def test_spec_matches_oracle_across_draft_lens(draft_len):
    _, _, baseline = serve_trace(7, None)
    backend, engine, armed = serve_trace(
        7, SpecConfig(draft_len=draft_len, seed=7)
    )
    assert {r.request_id: tuple(r.generated_tokens) for r in armed} == {
        r.request_id: tuple(r.generated_tokens) for r in baseline
    }
    assert engine.spec_rounds > 0
    assert_no_leaks(backend)


def test_spec_matches_oracle_mixed_ranks():
    """Adapters of different ranks share the same speculative batch."""
    ranks = (4, 8, 16)
    _, _, baseline = serve_trace(11, None, n_requests=6, ranks=ranks)
    backend, engine, armed = serve_trace(
        11, SpecConfig(draft_len=4, seed=11), n_requests=6, ranks=ranks
    )
    lora_ids = {r.lora_id for r in armed}
    assert len(lora_ids) > 1, "trace must mix adapters for this to bite"
    assert {r.request_id: tuple(r.generated_tokens) for r in armed} == {
        r.request_id: tuple(r.generated_tokens) for r in baseline
    }
    assert engine.spec_rounds > 0
    assert_no_leaks(backend)


def test_spec_single_layer_draft():
    """draft_layers=1: maximally cheap (and wrong) draft still verifies
    down to the exact greedy stream — acceptance only affects speed."""
    _, _, baseline = serve_trace(3, None)
    backend, engine, armed = serve_trace(
        3, SpecConfig(draft_len=4, seed=3, draft_layers=1)
    )
    assert {r.request_id: tuple(r.generated_tokens) for r in armed} == {
        r.request_id: tuple(r.generated_tokens) for r in baseline
    }
    assert backend._draft_model is not None
    assert backend._draft_model.weights.config.num_layers == 1
    assert_no_leaks(backend)


def test_spec_eos_clips_mid_round():
    """An EOS landing inside a speculative burst clips the commit and the
    trailing KV slots roll back; the stream still matches the baseline."""
    lengths = ShareGptLengths(max_prompt_len=8, max_response_len=24)
    trace = generate_trace(3, "uniform", seed=5, lengths=lengths)

    def run(spec):
        cfg_, backend, engine = build_engine(5, spec, eos_token_id=9)
        reqs = requests_from_trace(
            trace, with_prompt_tokens=True, vocab_size=cfg_.vocab_size
        )
        serve_requests(engine, reqs)
        return backend, engine, reqs

    _, _, baseline = run(None)
    backend, engine, armed = run(SpecConfig(draft_len=4, seed=5))
    assert {r.request_id: tuple(r.generated_tokens) for r in armed} == {
        r.request_id: tuple(r.generated_tokens) for r in baseline
    }
    for req in armed:
        assert req.state is RequestState.FINISHED
        # The terminal release reclaimed every slot, reserved or committed.
        assert req.kv_len == 0
    assert_no_leaks(backend)
