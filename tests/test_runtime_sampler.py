"""Tests for token samplers."""

import numpy as np
import pytest

from repro.runtime.sampler import GreedySampler, TemperatureSampler


class TestGreedy:
    def test_argmax(self):
        assert GreedySampler().sample(np.array([0.1, 5.0, 2.0])) == 1

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            GreedySampler().sample(np.zeros((2, 3)))


class TestTemperature:
    def test_low_temperature_approaches_greedy(self):
        logits = np.array([0.0, 10.0, 1.0])
        s = TemperatureSampler(temperature=0.01, seed=0)
        assert all(s.sample(logits) == 1 for _ in range(20))

    def test_reproducible_with_seed(self):
        logits = np.array([1.0, 1.1, 0.9, 1.05])
        a = [TemperatureSampler(seed=7).sample(logits) for _ in range(1)]
        b = [TemperatureSampler(seed=7).sample(logits) for _ in range(1)]
        assert a == b

    def test_top_k_restricts_support(self):
        logits = np.array([10.0, 9.0, -50.0, -50.0])
        s = TemperatureSampler(temperature=5.0, top_k=2, seed=0)
        draws = {s.sample(logits) for _ in range(50)}
        assert draws <= {0, 1}

    def test_high_temperature_spreads(self):
        logits = np.array([2.0, 1.0, 0.0])
        s = TemperatureSampler(temperature=50.0, seed=0)
        draws = {s.sample(logits) for _ in range(200)}
        assert draws == {0, 1, 2}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TemperatureSampler(temperature=0)
        with pytest.raises(ValueError):
            TemperatureSampler(top_k=0)
