"""Tests for on-demand LoRA loading (paper §5.2)."""

import pytest

from repro.hw.pcie import PCIE_GEN4_X16
from repro.runtime.loader import LoraLoader
from repro.utils.units import MB, MS


class TestLoading:
    def test_load_becomes_ready_after_transfer(self):
        loader = LoraLoader()
        plan = loader.request_load("m0", 40 * MB, now=0.0)
        assert loader.is_resident("m0")
        assert not loader.is_ready("m0", now=0.0)
        assert loader.is_ready("m0", now=plan.finish)
        # §5.2: whole-model load ~2ms.
        assert 1 * MS < plan.duration < 3 * MS

    def test_idempotent_load(self):
        loader = LoraLoader()
        p1 = loader.request_load("m0", 40 * MB, now=0.0)
        p2 = loader.request_load("m0", 40 * MB, now=1.0)
        assert p1 is p2  # no second copy issued

    def test_ready_time(self):
        loader = LoraLoader()
        plan = loader.request_load("m0", 10 * MB, now=5.0)
        assert loader.ready_time("m0") == plan.finish

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            LoraLoader().ready_time("ghost")


class TestRefcounting:
    def test_acquire_release(self):
        loader = LoraLoader()
        loader.request_load("m0", 1 * MB, now=0.0)
        loader.acquire("m0", now=0.0)
        loader.release("m0")
        with pytest.raises(RuntimeError):
            loader.release("m0")

    def test_acquire_unloaded_rejected(self):
        with pytest.raises(KeyError):
            LoraLoader().acquire("ghost", now=0.0)


class TestEviction:
    def test_lru_eviction_when_over_budget(self):
        loader = LoraLoader(capacity_bytes=100 * MB)
        loader.request_load("old", 60 * MB, now=0.0)
        loader.request_load("new", 60 * MB, now=10.0)  # must evict "old"
        assert not loader.is_resident("old")
        assert loader.is_resident("new")

    def test_pinned_models_never_evicted(self):
        loader = LoraLoader(capacity_bytes=100 * MB)
        loader.request_load("pinned", 60 * MB, now=0.0)
        loader.acquire("pinned", now=0.0)
        with pytest.raises(MemoryError):
            loader.request_load("other", 60 * MB, now=10.0)

    def test_in_flight_transfers_not_evicted(self):
        loader = LoraLoader(capacity_bytes=100 * MB)
        loader.request_load("inflight", 60 * MB, now=0.0)
        # At now=0 the copy hasn't finished; it cannot be the LRU victim.
        with pytest.raises(MemoryError):
            loader.request_load("other", 60 * MB, now=0.0)

    def test_no_budget_never_evicts(self):
        loader = LoraLoader()
        for i in range(20):
            loader.request_load(f"m{i}", 100 * MB, now=float(i))
        assert len(loader.resident_models()) == 20

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            LoraLoader(capacity_bytes=0)

    def test_oversized_adapter_clear_error_without_eviction(self):
        # An adapter bigger than the whole budget can never fit; the loader
        # must say so up front instead of draining the cache first.
        loader = LoraLoader(capacity_bytes=100 * MB)
        loader.request_load("small", 40 * MB, now=0.0)
        with pytest.raises(MemoryError, match="never fit"):
            loader.request_load("huge", 150 * MB, now=100.0)
        assert loader.is_resident("small")
        assert loader.num_evictions == 0

    def test_release_unpins_for_eviction(self):
        # The refcount-pinned path end to end: pinned blocks eviction,
        # releasing the last reference makes the adapter evictable again.
        loader = LoraLoader(capacity_bytes=100 * MB)
        loader.request_load("pinned", 60 * MB, now=0.0)
        loader.acquire("pinned", now=0.0)
        loader.acquire("pinned", now=1.0)
        loader.release("pinned")  # still pinned by the first reference
        with pytest.raises(MemoryError):
            loader.request_load("other", 60 * MB, now=10.0)
        loader.release("pinned")
        loader.request_load("other", 60 * MB, now=20.0)
        assert loader.is_resident("other")
        assert not loader.is_resident("pinned")
        assert loader.num_evictions == 1


class TestLayerGranularity:
    def test_layer_load_near_paper_50us(self):
        # §5.2 quotes ~50us/layer and ~2ms/model; at rank 16 a 7B layer's
        # LoRA is ~2.5 MB, which PCIe Gen4 x16 moves in ~100us — the paper's
        # two numbers are mutually inconsistent (32 x 50us = 1.6ms), so we
        # accept the same order of magnitude (see EXPERIMENTS.md).
        from repro.models.config import LLAMA2_7B
        layer_bytes = LLAMA2_7B.lora_bytes(16) / LLAMA2_7B.num_layers
        t = PCIE_GEN4_X16.transfer_time(layer_bytes)
        assert 30e-6 < t < 200e-6
