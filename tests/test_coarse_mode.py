"""Coarse time-step mode (``REPRO_COARSE_DT``) is statistics-only.

The contract (src/repro/utils/fastpath.py, docs/performance.md): under a
coarse dt the *bulk* step recordings collapse per-step metric series
samples into dt-wide buckets — token sums, last batch size — while
request evolution and registry totals stay byte-identical to the exact
run. These tests pin both halves: the unit-level bucket arithmetic on
:class:`ClusterMetrics`, and an end-to-end fig13-style run where the
only observable difference is series density.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.metrics import ClusterMetrics
from repro.utils.fastpath import coarse_dt


class TestResolver:
    def test_env_opt_in_and_off_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_COARSE_DT", raising=False)
        assert coarse_dt() is None
        monkeypatch.setenv("REPRO_COARSE_DT", "2.5")
        assert coarse_dt() == 2.5
        assert ClusterMetrics().coarse_dt == 2.5
        monkeypatch.setenv("REPRO_COARSE_DT", "0")
        assert coarse_dt() is None
        assert ClusterMetrics().coarse_dt is None

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COARSE_DT", "2.5")
        assert coarse_dt(10.0) == 10.0
        assert ClusterMetrics(coarse_dt=10.0).coarse_dt == 10.0

    def test_non_numeric_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_COARSE_DT", "fast")
        with pytest.raises(ValueError):
            coarse_dt()


class TestBulkCollapse:
    """Bucket arithmetic of the two bulk recording paths."""

    STARTS = np.array([0.1, 0.6, 1.1, 2.3, 2.9, 5.0])

    def test_record_step_run_collapses_series_not_totals(self):
        exact = ClusterMetrics()
        coarse = ClusterMetrics(coarse_dt=2.0)
        for m in (exact, coarse):
            m.record_step_run(
                "gpu0", self.STARTS, tokens_per_step=3.0, batch_size=4
            )
        # Registry totals are never coarsened.
        assert exact.registry.to_json() == coarse.registry.to_json()
        # Buckets 0, 2, 4 -> one sample each, stamped at the bucket's
        # first step time (monotone past exact scalar samples).
        assert len(coarse.tokens) == 3
        assert len(exact.tokens) == len(self.STARTS)
        assert list(coarse.tokens.times) == [0.1, 2.3, 5.0]
        # Token counts are integers, so bucket sums match exactly.
        assert coarse.tokens.bucket_sum(2.0, 6.0) == exact.tokens.bucket_sum(2.0, 6.0)
        assert list(coarse.tokens.values) == [9.0, 6.0, 3.0]
        # Batch-size series keeps one (last-value) sample per bucket.
        assert len(coarse.gpu_batch_size["gpu0"]) == 3
        assert set(coarse.gpu_batch_size["gpu0"].values) == {4.0}

    def test_record_step_merge_collapses_series_not_totals(self):
        times = np.sort(np.concatenate([self.STARTS, self.STARTS + 0.05]))
        tokens = np.ones(len(times)) * 2.0
        per_gpu = [
            ("gpu0", self.STARTS, 3),
            ("gpu1", self.STARTS + 0.05, 5),
        ]
        exact = ClusterMetrics()
        coarse = ClusterMetrics(coarse_dt=2.0)
        for m in (exact, coarse):
            m.record_step_merge(times, tokens, per_gpu)
        assert exact.registry.to_json() == coarse.registry.to_json()
        assert len(coarse.tokens) == 3
        assert len(exact.tokens) == len(times)
        assert coarse.tokens.bucket_sum(2.0, 6.0) == exact.tokens.bucket_sum(2.0, 6.0)
        for gpu in ("gpu0", "gpu1"):
            assert len(coarse.gpu_batch_size[gpu]) == 3
            assert len(exact.gpu_batch_size[gpu]) == len(self.STARTS)

    def test_bucket_sum_at_coarser_resolution_unchanged(self):
        # Any bucket_sum at resolution >= dt is unchanged by coarsening.
        exact = ClusterMetrics()
        coarse = ClusterMetrics(coarse_dt=1.0)
        for m in (exact, coarse):
            m.record_step_run(
                "gpu0", self.STARTS, tokens_per_step=2.0, batch_size=2
            )
        for bucket in (1.0, 2.0, 3.0):
            assert coarse.tokens.bucket_sum(bucket, 6.0) == exact.tokens.bucket_sum(
                bucket, 6.0
            )

    def test_empty_run_is_noop(self):
        m = ClusterMetrics(coarse_dt=1.0)
        m.record_step_run("gpu0", np.array([]), tokens_per_step=1.0, batch_size=1)
        m.record_step_merge(np.array([]), np.array([]), [])
        assert len(m.tokens) == 0


class TestEndToEnd:
    """A fig13-style run under REPRO_COARSE_DT differs only in series density."""

    DT = 5.0

    def _run(self, monkeypatch, env: "str | None"):
        from repro.bench.fig13_cluster import build_cluster
        from repro.workloads.scale import FIG13_1M, scale_trace

        if env is None:
            monkeypatch.delenv("REPRO_COARSE_DT", raising=False)
        else:
            monkeypatch.setenv("REPRO_COARSE_DT", env)
        trace = scale_trace(FIG13_1M, fraction=0.001, seed=0)
        sim = build_cluster(
            FIG13_1M.num_gpus,
            max_batch_size=FIG13_1M.max_batch_size,
            fast_path=True,
        )
        result = sim.run(trace)
        return sim, result

    def test_statistics_only(self, monkeypatch):
        sim_exact, res_exact = self._run(monkeypatch, None)
        sim_coarse, res_coarse = self._run(monkeypatch, str(self.DT))

        # Request evolution is exact: terminal accounting, tokens, clock.
        for attr in (
            "finished_requests",
            "failed_requests",
            "tokens_generated",
            "events_processed",
            "duration",
        ):
            assert getattr(res_coarse, attr) == getattr(res_exact, attr), attr

        # Registry totals are never coarsened.
        assert (
            sim_coarse.metrics.registry.to_json()
            == sim_exact.metrics.registry.to_json()
        )

        # The token series is genuinely downsampled...
        exact_tokens = sim_exact.metrics.tokens
        coarse_tokens = sim_coarse.metrics.tokens
        assert len(coarse_tokens) < len(exact_tokens)

        # ...but any bucket_sum at resolution >= dt is unchanged.
        dur = float(res_exact.duration) + self.DT
        ce = coarse_tokens.bucket_sum(self.DT, dur)
        ex = exact_tokens.bucket_sum(self.DT, dur)
        assert [t for t, _ in ce] == [t for t, _ in ex]
        np.testing.assert_allclose(
            [v for _, v in ce], [v for _, v in ex], rtol=0, atol=1e-6
        )
        assert sum(v for _, v in ce) == pytest.approx(
            float(res_exact.tokens_generated)
        )
