"""Tests for the PCIe transfer model (on-demand LoRA loading, §5.2)."""

import pytest

from repro.hw.pcie import PCIE_GEN4_X16, PcieSpec, TransferPlan, plan_transfer
from repro.utils.units import MB, MS, US


class TestPcieSpec:
    def test_layer_load_around_50us(self):
        # Paper §5.2: ~50us per layer on PCIe Gen4 x16. A 7B layer's LoRA
        # (rank 16, 7 projections) is ~1.2 MB.
        t = PCIE_GEN4_X16.transfer_time(1.2 * MB)
        assert 30 * US < t < 80 * US

    def test_full_model_load_around_2ms(self):
        # Paper §5.2: ~2ms for the whole model (~40 MB of LoRA weights).
        t = PCIE_GEN4_X16.transfer_time(40 * MB)
        assert 1 * MS < t < 3 * MS

    def test_zero_bytes_free(self):
        assert PCIE_GEN4_X16.transfer_time(0) == 0.0

    def test_latency_floor(self):
        assert PCIE_GEN4_X16.transfer_time(1) >= PCIE_GEN4_X16.latency

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            PcieSpec(name="bad", effective_bandwidth=0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN4_X16.transfer_time(-1)


class TestTransferPlan:
    def test_plan_schedule(self):
        plan = plan_transfer(PCIE_GEN4_X16, 40 * MB, start=10.0)
        assert plan.start == 10.0
        assert plan.finish == pytest.approx(10.0 + PCIE_GEN4_X16.transfer_time(40 * MB))

    def test_done_by(self):
        plan = plan_transfer(PCIE_GEN4_X16, 40 * MB, start=0.0)
        assert not plan.done_by(plan.finish - 1e-9)
        assert plan.done_by(plan.finish)

    def test_duration(self):
        plan = TransferPlan(nbytes=10.0, start=1.0, finish=2.0)
        assert plan.duration == 1.0

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            TransferPlan(nbytes=1.0, start=2.0, finish=1.0)
