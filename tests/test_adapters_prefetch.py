"""Tests for the popularity-driven adapter prefetcher."""

import pytest

from repro.adapters.prefetch import PrefetchConfig, Prefetcher
from repro.adapters.registry import AdapterRegistry, HostTierSpec
from repro.adapters.store import GpuAdapterStore
from repro.utils.units import MB


def make_setup(n_adapters=4, capacity=200 * MB, host=None):
    reg = AdapterRegistry(host=host or HostTierSpec())
    for i in range(n_adapters):
        # lora-0 hottest, descending priors.
        reg.register(f"lora-{i}", rank=16, nbytes=40 * MB,
                     prior_rate=float(n_adapters - i))
    store = GpuAdapterStore(registry=reg, capacity_bytes=capacity, gpu_id="gpu0")
    return reg, store


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(interval=0.0)
        with pytest.raises(ValueError):
            PrefetchConfig(host_topk=-1)
        with pytest.raises(ValueError):
            PrefetchConfig(min_rate=-0.1)


class TestStaging:
    def test_tick_stages_hottest(self):
        reg, store = make_setup(n_adapters=6)
        pf = Prefetcher(reg, PrefetchConfig(host_topk=3, gpu_topk=0))
        staged, promoted = pf.tick(0.0)
        assert staged == 3 and promoted == 0
        assert sorted(reg.host_resident_adapters()) == [
            "lora-0", "lora-1", "lora-2"
        ]

    def test_min_rate_filters_cold_adapters(self):
        reg, _ = make_setup(n_adapters=3)  # prior rates 3, 2, 1
        pf = Prefetcher(reg, PrefetchConfig(host_topk=8, min_rate=1.5))
        staged, _ = pf.tick(0.0)
        assert staged == 2  # lora-2 (rate 1) stays on disk

    def test_full_pinned_host_tier_backs_off(self):
        host = HostTierSpec(capacity_bytes=40 * MB)
        reg, _ = make_setup(n_adapters=2, host=host)
        reg.ensure_host("lora-1", now=0.0)
        reg.note_gpu_resident("lora-1", "elsewhere")  # pins the only slot
        pf = Prefetcher(reg, PrefetchConfig(host_topk=2, gpu_topk=0))
        staged, _ = pf.tick(100.0)  # must not raise
        assert staged == 0


class TestPromotion:
    def test_promotes_settled_host_copies_into_free_bytes(self):
        reg, store = make_setup()
        pf = Prefetcher(reg, PrefetchConfig(host_topk=4, gpu_topk=2))
        pf.attach({"gpu0": store})
        pf.tick(0.0)  # stages; host copies still in flight -> no promotion
        assert store.resident_models() == []
        _, promoted = pf.tick(10.0)  # settled now
        assert promoted == 2
        assert sorted(store.resident_models()) == ["lora-0", "lora-1"]
        assert pf.num_promoted == 2

    def test_respects_busy_pcie(self):
        reg, store = make_setup()
        reg.ensure_host("lora-3", now=-100.0)
        store.request_load("lora-3", 40 * MB, now=0.0)  # demand copy in flight
        pf = Prefetcher(reg, PrefetchConfig(host_topk=4, gpu_topk=2))
        pf.attach({"gpu0": store})
        for lid in ("lora-0", "lora-1"):
            reg.ensure_host(lid, now=-100.0)
        _, promoted = pf.tick(0.0)
        assert promoted == 0  # the link belongs to the demand load

    def test_promotion_never_evicts(self):
        reg, store = make_setup(capacity=60 * MB)
        store.request_load("lora-3", 40 * MB, now=0.0)
        store.advance(100.0)
        for lid in ("lora-0", "lora-1"):
            reg.ensure_host(lid, now=-100.0)
        pf = Prefetcher(reg, PrefetchConfig(host_topk=2, gpu_topk=2))
        pf.attach({"gpu0": store})
        _, promoted = pf.tick(200.0)
        assert promoted == 0  # 40 MB adapters don't fit in 20 MB free
        assert store.is_resident("lora-3")


class TestHints:
    def test_hint_stages_queued_adapter(self):
        reg, _ = make_setup()
        pf = Prefetcher(reg)
        pf.hint_queued("lora-3", now=1.0)
        assert reg.host_resident("lora-3")
        assert pf.num_hints == 1

    def test_hint_idempotent_and_ignores_unknown(self):
        reg, _ = make_setup()
        pf = Prefetcher(reg)
        pf.hint_queued("lora-3", now=1.0)
        pf.hint_queued("lora-3", now=2.0)  # already staged
        pf.hint_queued("unregistered", now=3.0)  # silently ignored
        assert pf.num_hints == 1
