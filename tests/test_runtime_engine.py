"""Tests for the continuous-batching engine with the simulated backend."""

import pytest

from repro.models.config import LLAMA2_7B, tiny_config
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.utils.units import GIB
from repro.workloads.trace import RequestSpec


def make_request(rid, lora="m0", prompt=16, response=4, arrival=0.0):
    return Request(
        spec=RequestSpec(
            request_id=rid, lora_id=lora, arrival_time=arrival,
            prompt_len=prompt, response_len=response,
        )
    )


def make_engine(max_batch=32, same_lora_only=False, kv_capacity=None, config=LLAMA2_7B):
    backend = SimulatedBackend(config, kv_capacity_bytes=kv_capacity, step_overhead=0.0)
    return GpuEngine(
        "gpu0",
        backend,
        EngineConfig(max_batch_size=max_batch, same_lora_only=same_lora_only),
    )


def run_until_idle(engine, now=0.0, limit=10_000):
    reports = []
    for _ in range(limit):
        r = engine.step(now)
        if r is None:
            if engine.is_idle:
                break
            now += 1e-3  # waiting on LoRA load
            continue
        reports.append(r)
        now = r.end
    return reports, now


class TestAdmission:
    def test_add_and_serve_one_request(self):
        engine = make_engine()
        req = make_request("r0", response=3)
        engine.add_request(req, now=0.0)
        reports, _ = run_until_idle(engine)
        assert req.state is RequestState.FINISHED
        assert req.num_generated == 3
        # prefill step + 2 decode steps
        assert len(reports) == 3
        assert reports[0].num_prefill == 1

    def test_max_batch_size_enforced(self):
        engine = make_engine(max_batch=2)
        engine.add_request(make_request("r0"), 0.0)
        engine.add_request(make_request("r1"), 0.0)
        assert not engine.can_accept(make_request("r2"))
        with pytest.raises(RuntimeError):
            engine.add_request(make_request("r2"), 0.0)

    def test_kv_capacity_enforced(self):
        # Tiny pool: ~2000 tokens.
        engine = make_engine(kv_capacity=2000 * LLAMA2_7B.kv_bytes_per_token())
        assert not engine.can_accept(make_request("big", prompt=4000))

    def test_duplicate_rejected(self):
        engine = make_engine()
        engine.add_request(make_request("r0"), 0.0)
        with pytest.raises(ValueError):
            engine.add_request(make_request("r0"), 0.0)

    def test_working_set_counts_pending(self):
        engine = make_engine()
        engine.add_request(make_request("r0"), 0.0)
        assert engine.working_set_size == 1
        assert not engine.is_idle


class TestLoraLoading:
    def test_request_waits_for_lora_load(self):
        engine = make_engine()
        engine.add_request(make_request("r0"), now=0.0)
        # The ~2ms PCIe copy hasn't finished at t=0: no prefill possible.
        assert engine.step(0.0) is None
        ready = engine.loader.ready_time("m0")
        report = engine.step(ready)
        assert report is not None and report.num_prefill == 1

    def test_resident_lora_needs_no_wait(self):
        engine = make_engine()
        engine.add_request(make_request("r0", lora="m0"), 0.0)
        run_until_idle(engine)
        # Second request for the same model: weights already resident.
        engine.add_request(make_request("r1", lora="m0"), now=100.0)
        assert engine.step(100.0) is not None


class TestContinuousBatching:
    def test_multi_lora_requests_share_batches(self):
        engine = make_engine()
        t = 0.0
        for i in range(4):
            engine.add_request(make_request(f"r{i}", lora=f"m{i}", response=8), t)
        reports, _ = run_until_idle(engine)
        assert any(r.num_lora_segments >= 3 for r in reports)
        assert max(r.batch_size for r in reports) == 4

    def test_one_prefill_per_step(self):
        engine = make_engine()
        for i in range(3):
            engine.add_request(make_request(f"r{i}", response=6), 0.0)
        reports, _ = run_until_idle(engine)
        assert all(r.num_prefill <= 1 for r in reports)

    def test_finished_request_leaves_immediately(self):
        # Separable KvCache: short request exits while long one continues.
        engine = make_engine()
        engine.add_request(make_request("short", response=4), 0.0)
        engine.add_request(make_request("long", response=10), 0.0)
        reports, _ = run_until_idle(engine)
        sizes = [r.num_decode for r in reports]
        assert 1 in sizes and 2 in sizes  # batch shrank mid-flight

    def test_same_lora_only_mode_blocks_other_models(self):
        engine = make_engine(same_lora_only=True)
        engine.add_request(make_request("r0", lora="a", response=6), 0.0)
        assert not engine.can_accept(make_request("r1", lora="b"))
        assert engine.can_accept(make_request("r2", lora="a"))

    def test_tokens_counted_per_step(self):
        engine = make_engine()
        engine.add_request(make_request("r0", response=5), 0.0)
        reports, _ = run_until_idle(engine)
        assert sum(r.tokens_generated for r in reports) == 5


class TestEviction:
    def test_memory_pressure_evicts_newest(self):
        bpt = LLAMA2_7B.kv_bytes_per_token()
        # Pool of exactly 48 tokens (page_size 16 -> 3 pages).
        engine = make_engine(kv_capacity=48 * bpt)
        old = make_request("old", prompt=16, response=40)
        new = make_request("new", prompt=16, response=40)
        engine.add_request(old, 0.0)
        reports, now = [], 1.0
        engine.add_request(new, 0.5)
        for _ in range(200):
            r = engine.step(now)
            if r is None:
                if engine.is_idle:
                    break
                now += 1e-3
                continue
            reports.append(r)
            now = r.end
            if r.evicted:
                break
        evicted = [rid for r in reports for rid in r.evicted]
        assert evicted == ["new"]  # newest evicted, FCFS preserved
        assert new.state is RequestState.QUEUED
        assert new.needs_prefill
        assert new.num_generated > 0  # progress preserved

    def test_cancel_requeue_preserves_tokens(self):
        engine = make_engine()
        req = make_request("r0", response=10)
        engine.add_request(req, 0.0)
        ready = engine.loader.ready_time("m0")
        engine.step(ready)
        engine.step(ready + 1.0)
        assert req.num_generated == 2
        returned = engine.cancel("r0", requeue=True)
        assert returned is req
        assert req.state is RequestState.QUEUED
        assert req.num_generated == 2
        assert engine.is_idle

    def test_cancel_without_requeue(self):
        engine = make_engine()
        req = make_request("r0")
        engine.add_request(req, 0.0)
        engine.cancel("r0")
        assert req.state is RequestState.CANCELLED

    def test_cancel_unknown(self):
        with pytest.raises(KeyError):
            make_engine().cancel("ghost")


class TestConfigValidation:
    def test_prefill_batch_limit_zero_rejected(self):
        # 0 used to slip through a `< 0` check and starve every queued
        # request forever.
        with pytest.raises(ValueError, match="prefill_batch_limit"):
            EngineConfig(prefill_batch_limit=0)

    def test_prefill_batch_limit_negative_rejected(self):
        with pytest.raises(ValueError, match="prefill_batch_limit"):
            EngineConfig(prefill_batch_limit=-1)


class TestKvHandoff:
    def test_export_then_import_resumes_without_reprefill(self):
        src = make_engine()
        dst = make_engine()
        req = make_request("r0", prompt=16, response=4)
        src.add_request(req, 0.0)
        ready = src.loader.ready_time("m0")
        report = src.step(ready)
        assert report.num_prefill == 1 and req.num_generated == 1

        request, kv_tokens = src.export_request("r0", report.end)
        assert request is req
        assert kv_tokens == req.kv_len and kv_tokens >= 16
        assert src.is_idle
        assert not req.needs_prefill

        assert dst.can_accept_import(req, kv_tokens)
        dst.import_request(req, kv_tokens, report.end)
        assert req.state is RequestState.RUNNING
        reports, _ = run_until_idle(dst, now=report.end)
        assert req.state is RequestState.FINISHED
        assert req.num_generated == 4
        # The whole point of the handoff: no prefill on the decode side.
        assert all(r.num_prefill == 0 for r in reports)

    def test_export_requires_active_request(self):
        engine = make_engine()
        req = make_request("r0")
        engine.add_request(req, 0.0)
        # Still pending (prefill hasn't run): nothing to export.
        with pytest.raises(KeyError):
            engine.export_request("r0", 0.0)
        with pytest.raises(KeyError):
            engine.export_request("ghost", 0.0)

    def test_import_rejected_when_batch_full(self):
        src = make_engine()
        dst = make_engine(max_batch=1)
        dst.add_request(make_request("occupant"), 0.0)
        req = make_request("r0", prompt=16, response=4)
        src.add_request(req, 0.0)
        report = src.step(src.loader.ready_time("m0"))
        _, kv_tokens = src.export_request("r0", report.end)
        assert not dst.can_accept_import(req, kv_tokens)
        with pytest.raises(RuntimeError):
            dst.import_request(req, kv_tokens, report.end)


class TestStepReport:
    def test_report_fields(self):
        engine = make_engine()
        engine.add_request(make_request("r0", prompt=32), 0.0)
        ready = engine.loader.ready_time("m0")
        r = engine.step(ready)
        assert r.gpu_id == "gpu0"
        assert r.start == ready
        assert r.end == ready + r.latency
        assert r.latency > 0
        assert r.num_prefill == 1 and r.num_decode == 0
        assert r.batch_size == 1


class TestEvictionOrderingRegression:
    """Pin §5.3's newest-victim-first ordering under sustained KvCache
    pressure, with multiple victims in one run and on both engine paths.

    The scenario: four requests admitted in order, then the remaining
    KvCache pages are consumed by a blocker allocation. As each request's
    sequence crosses a page boundary it needs a fresh page, so victims
    must fall in exact reverse-admission order (d first, then c) while
    the two oldest requests run to completion — FCFS preserved.
    """

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_multi_victim_newest_first(self, fast_path):
        bpt = LLAMA2_7B.kv_bytes_per_token()
        backend = SimulatedBackend(
            LLAMA2_7B, kv_capacity_bytes=8 * 16 * bpt, step_overhead=0.0,
            fast_path=fast_path,
        )
        engine = GpuEngine(
            "gpu0", backend, EngineConfig(max_batch_size=8),
            fast_path=fast_path,
        )
        reqs = {
            rid: make_request(rid, prompt=8, response=12)
            for rid in ("a", "b", "c", "d")
        }
        now = 0.0
        reports = []
        for rid in ("a", "b", "c", "d"):
            engine.add_request(reqs[rid], now)
            for _ in range(100):
                r = engine.step(now)
                if r is None:
                    now += 1e-3
                    continue
                reports.append(r)
                now = r.end
                if not reqs[rid].needs_prefill:
                    break
            assert not reqs[rid].needs_prefill
        # Eat every remaining page: the next boundary crossing must evict.
        backend.kv_admit("blocker", backend.kv.free_pages * 16)
        assert backend.kv.free_pages == 0
        for _ in range(400):
            r = engine.step(now)
            if r is None:
                if engine.is_idle:
                    break
                now += 1e-3
                continue
            reports.append(r)
            now = r.end
        evicted = [rid for r in reports for rid in r.evicted]
        assert evicted == ["d", "c"]  # strict newest-first, one per crossing
        assert reqs["a"].state is RequestState.FINISHED
        assert reqs["b"].state is RequestState.FINISHED
        assert reqs["c"].state is RequestState.QUEUED
        assert reqs["d"].state is RequestState.QUEUED
        # Victims keep their generated prefix for re-placement (§5.3).
        assert reqs["c"].num_generated > 0
        assert reqs["d"].num_generated > 0

    def test_fast_and_reference_evictions_agree(self):
        def run(fast_path):
            bpt = LLAMA2_7B.kv_bytes_per_token()
            backend = SimulatedBackend(
                LLAMA2_7B, kv_capacity_bytes=6 * 16 * bpt, step_overhead=0.0,
                fast_path=fast_path,
            )
            engine = GpuEngine(
                "gpu0", backend, EngineConfig(max_batch_size=8),
                fast_path=fast_path,
            )
            reqs = [
                make_request(f"r{i}", prompt=8, response=20, arrival=0.1 * i)
                for i in range(5)
            ]
            now, i = 0.0, 0
            log = []
            for _ in range(600):
                while i < len(reqs) and reqs[i].spec.arrival_time <= now:
                    if engine.can_accept(reqs[i]):
                        engine.add_request(reqs[i], now)
                        i += 1
                    else:
                        break
                r = engine.step(now)
                if r is None:
                    if engine.is_idle and i >= len(reqs):
                        break
                    now += 1e-3
                    continue
                log.append(
                    (round(r.start, 9), r.batch_size, r.finished, r.evicted)
                )
                now = r.end
            return log, [(q.request_id, q.state) for q in reqs]

        assert run(True) == run(False)
