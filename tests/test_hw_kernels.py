"""Tests for the kernel latency model — shapes must match the paper's §7.1."""

import pytest

from repro.hw.kernels import KernelCostModel, SgmvWorkload, sgmv_flop, sgmv_io_bytes
from repro.hw.spec import A100_80G
from repro.utils.units import US


@pytest.fixture(scope="module")
def model():
    return KernelCostModel(A100_80G)


def distinct_segments(bs):
    return tuple([1] * bs)


def lora_latency(model, segments, rank=16, h=4096, standalone=True):
    """Full LoRA addon latency; standalone=True = the Fig 8/9 microbench setting."""
    return model.lora_addon(segments, h_in=h, h_out=h, rank=rank, standalone=standalone)


class TestSgmvAccounting:
    def test_flop_formula(self):
        # Paper §7.1: FLOP = s_n * h_i * h_o * 2.
        assert sgmv_flop([2, 3], 16, 4096) == 5 * 16 * 4096 * 2

    def test_io_formula(self):
        # Paper §7.1: IO = [s_n(h_i+h_o) + n*h_i*h_o] * 2.
        assert sgmv_io_bytes([2, 3], 16, 4096) == (5 * (16 + 4096) + 2 * 16 * 4096) * 2

    def test_distinct_intensity_constant(self):
        # In the Distinct case FLOP and IO grow at the same rate (§7.1).
        w1 = SgmvWorkload(distinct_segments(1), 16, 4096)
        w64 = SgmvWorkload(distinct_segments(64), 16, 4096)
        assert w64.arithmetic_intensity == pytest.approx(w1.arithmetic_intensity, rel=0.01)

    def test_identical_intensity_grows(self):
        # In the Identical case intensity grows with batch (weight reuse).
        w1 = SgmvWorkload((1,), 16, 4096)
        w64 = SgmvWorkload((64,), 16, 4096)
        assert w64.arithmetic_intensity > 10 * w1.arithmetic_intensity

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            SgmvWorkload((), 16, 4096)
        with pytest.raises(ValueError):
            SgmvWorkload((0, 1), 16, 4096)


class TestSgmvLatencyShape:
    """Fig 8/9 shapes: Distinct grows, Uniform/Skewed mild, Identical flat."""

    def test_batch1_near_paper_37us(self, model):
        t = lora_latency(model, (1,))
        assert 30 * US < t < 50 * US

    def test_distinct_bs64_near_paper_fig9(self, model):
        # Fig 9 reports ~75us for rank-16 distinct bs-64 (Fig 8's 116us for
        # the same config disagrees with Fig 9; we calibrate to Fig 9, which
        # carries the rank structure — see EXPERIMENTS.md).
        t = lora_latency(model, distinct_segments(64))
        assert 60 * US < t < 130 * US

    def test_identical_flat(self, model):
        t1 = lora_latency(model, (1,))
        t64 = lora_latency(model, (64,))
        assert t64 < t1 * 1.25  # paper: 37us -> 40us

    def test_uniform_mild_growth(self, model):
        t1 = lora_latency(model, (1,))
        t64 = lora_latency(model, tuple([8] * 8))  # 8 models x 8 requests
        assert t64 < t1 * 1.5  # paper: 37us -> 46us

    def test_distinct_monotone_in_batch(self, model):
        ts = [lora_latency(model, distinct_segments(b)) for b in (1, 8, 16, 32, 64)]
        assert ts == sorted(ts)

    def test_rank_sweep_ordering_fig9(self, model):
        # Larger ranks cost more at large distinct batch; batch-1 nearly equal.
        t64 = [lora_latency(model, distinct_segments(64), rank=r) for r in (8, 16, 32, 64)]
        assert t64 == sorted(t64)
        t1 = [lora_latency(model, (1,), rank=r) for r in (8, 16, 32, 64)]
        assert max(t1) < min(t1) * 1.3

    def test_in_engine_cheaper_than_standalone(self, model):
        # Back-to-back launches skip host dispatch: the reason a full layer's
        # seven LoRA addons cost far less than 7x the standalone op.
        segs = distinct_segments(32)
        engine = lora_latency(model, segs, standalone=False)
        bench = lora_latency(model, segs, standalone=True)
        assert engine < bench
        expected_gap = 2 * (A100_80G.op_dispatch_overhead + 32 * A100_80G.segment_host_cost)
        assert bench - engine == pytest.approx(expected_gap)

    def test_in_engine_batch1_under_10us(self, model):
        # Consistent with the paper's "+2ms per token" total LoRA overhead:
        # 7 projections x 32 layers x this must stay ~2ms.
        assert lora_latency(model, (1,), standalone=False) < 12 * US


class TestLoraOperatorComparison:
    """Fig 8: SGMV << Gather-BMM << Loop on multi-LoRA workloads."""

    def test_loop_terrible_on_distinct(self, model):
        segs = distinct_segments(32)
        assert model.loop_lora(segs, 4096, 4096, 16) > 5 * lora_latency(model, segs)

    def test_gather_bmm_worse_than_sgmv(self, model):
        segs = distinct_segments(64)
        assert model.gather_bmm_lora(segs, 4096, 4096, 16) > lora_latency(model, segs)

    def test_identical_case_all_close_except_gather_overhead(self, model):
        # With one model all three share BMM semantics; SGMV still wins
        # because Gather-BMM pays the stacked-copy IO.
        segs = (64,)
        sgmv = lora_latency(model, segs)
        gbmm = model.gather_bmm_lora(segs, 4096, 4096, 16)
        assert sgmv < gbmm

    def test_gather_io_grows_with_batch(self, model):
        t8 = model.gather(8, 8, 4096, 16)
        t64 = model.gather(64, 64, 4096, 16)
        assert t64 > t8


class TestGemm:
    def test_decode_gemm_is_memory_bound(self, model):
        # m=1: latency ~ weight bytes / bandwidth.
        t = model.gemm(1, 4096, 4096)
        weight_time = (4096 * 4096 * 2) / (
            A100_80G.hbm_bandwidth * A100_80G.tc_bandwidth_efficiency
        )
        assert t == pytest.approx(A100_80G.kernel_launch_overhead + weight_time, rel=0.01)

    def test_batching_nearly_free_in_memory_bound_regime(self, model):
        t1 = model.gemm(1, 4096, 4096)
        t32 = model.gemm(32, 4096, 4096)
        assert t32 < t1 * 1.1

    def test_prefill_gemm_scales_with_tokens(self, model):
        t512 = model.gemm(512, 4096, 4096)
        t2048 = model.gemm(2048, 4096, 4096)
        assert t2048 > 3.0 * t512

    def test_invalid_dims(self, model):
        with pytest.raises(ValueError):
            model.gemm(0, 1, 1)


class TestAttention:
    def test_decode_scales_with_kv_length(self, model):
        short = model.attention_decode([128] * 32, 32, 128)
        long = model.attention_decode([2048] * 32, 32, 128)
        assert long > 8 * short

    def test_prefill_flash_beats_naive(self, model):
        flash = model.attention_prefill(2048, 32, 128, flash=True)
        naive = model.attention_prefill(2048, 32, 128, flash=False)
        assert naive > flash

    def test_gqa_reduces_decode_io(self, model):
        mha = model.attention_decode([1024] * 8, 64, 128, num_kv_heads=64)
        gqa = model.attention_decode([1024] * 8, 64, 128, num_kv_heads=8)
        assert gqa < mha

    def test_empty_kv_ok(self, model):
        t = model.attention_decode([0], 32, 128)
        assert t > 0

    def test_negative_kv_rejected(self, model):
        with pytest.raises(ValueError):
            model.attention_decode([-1], 32, 128)


class TestSmallOps:
    def test_layernorm_fusion_ratio(self, model):
        # Paper §6: 110us -> 4us.
        assert model.layernorm(fused=False) / model.layernorm(fused=True) == pytest.approx(27.5)

    def test_elementwise_scales(self, model):
        assert model.elementwise(1e8) > model.elementwise(1e6)

    def test_elementwise_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.elementwise(-1)
