"""Static baseline engines under cancellation/requeue (cluster interop)."""

import pytest

from repro.baselines.framework import FASTER_TRANSFORMER, build_engine
from repro.cluster.scheduler import PunicaScheduler, SchedulerConfig
from repro.models.config import LLAMA2_7B
from repro.runtime.request import Request, RequestState
from repro.workloads.trace import RequestSpec


def make_request(rid, lora="m0", prompt=16, response=6):
    return Request(
        spec=RequestSpec(
            request_id=rid, lora_id=lora, arrival_time=0.0,
            prompt_len=prompt, response_len=response,
        )
    )


class TestStaticRequeue:
    def test_requeue_from_pending(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        req = make_request("r0")
        engine.add_request(req, 0.0)
        engine.cancel("r0", requeue=True)
        assert req.state is RequestState.QUEUED
        assert req.needs_prefill
        assert engine.is_idle

    def test_requeue_mid_batch_preserves_progress(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        a, b = make_request("a", response=8), make_request("b", response=8)
        engine.add_request(a, 0.0)
        engine.add_request(b, 0.0)
        now = 0.0
        for _ in range(3):
            now = engine.step(now).end
        assert a.num_generated == 3
        engine.cancel("a", requeue=True)
        assert a.state is RequestState.QUEUED
        assert a.num_generated == 3
        assert a.effective_prompt_len == 16 + 3
        # The remaining member continues to completion.
        while not engine.is_idle:
            now = engine.step(now).end
        assert b.state is RequestState.FINISHED

    def test_all_requests_listed(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        engine.add_request(make_request("a"), 0.0)
        engine.add_request(make_request("b"), 0.0)
        assert {r.request_id for r in engine.all_requests()} == {"a", "b"}

    def test_next_ready_time_none(self):
        engine = build_engine(FASTER_TRANSFORMER, LLAMA2_7B)
        assert engine.next_ready_time() is None


class TestStaticEngineInScheduler:
    def test_scheduler_over_static_engines(self):
        # The scheduler API works over baseline engines too (capability
        # parity of the driver interface).
        engines = [build_engine(FASTER_TRANSFORMER, LLAMA2_7B, gpu_id=f"g{i}")
                   for i in range(2)]
        sched = PunicaScheduler(engines, SchedulerConfig(consolidation=False))
        gpu = sched.submit(make_request("r0"), 0.0)
        assert gpu == "g1"  # highest UUID among idle engines
        # Same-LoRA packing: the next same-model request lands on g1 too.
        assert sched.submit(make_request("r1"), 0.0) == "g1"
        # A different model cannot share the unsealed batch -> other GPU.
        assert sched.submit(make_request("r2", lora="other"), 0.0) == "g0"
