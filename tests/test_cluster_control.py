"""Tests for the SLO-aware control plane (docs/slo.md).

Covers the three threads over the shared cost model: deadline-headroom
admission/routing (with provable-hopelessness shedding), heterogeneous
per-role fitness on mixed HwSpec fleets, and the EWMA predictive
autoscaler with its warm-up-aware shrink. The disaggregated variant's
EDF decode queue and its shed guard round out the matrix.
"""

import types

import pytest

from repro.cluster.control import (
    ControlConfig,
    EwmaForecast,
    FleetCostModel,
    PredictiveConfig,
    PredictiveElasticSimulator,
    SloClusterSimulator,
    SloDisaggSimulator,
    SloPolicy,
    SloRouter,
    install_slo_router,
    rebalance_roles,
    score_requests,
    slo_attainment,
)
from repro.cluster.elastic import ElasticConfig
from repro.cluster.simulator import ClusterSimulator
from repro.hw.spec import HwSpec
from repro.models.config import LLAMA2_7B
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import RequestSpec, generate_trace


def make_engine(gpu_id, preset="a100-80g", max_batch=4, step_overhead=0.0):
    return GpuEngine(
        gpu_id,
        SimulatedBackend(
            LLAMA2_7B, gpu=HwSpec.preset(preset), step_overhead=step_overhead
        ),
        EngineConfig(max_batch_size=max_batch),
    )


def make_request(rid, arrival=0.0, prompt=64, response=8, lora="lora-0"):
    return Request(spec=RequestSpec(rid, lora, arrival, prompt, response))


def make_trace(seed=0, n=40, rate=8.0, duration=4.0, prompt=64, response=8):
    return generate_trace(
        n, "skewed", seed=seed,
        lengths=ShareGptLengths(max_prompt_len=prompt, max_response_len=response),
        arrivals=PoissonArrivals(rate=constant_rate(rate), duration=duration),
    )


class TestConfig:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(ttft_deadline=0.0)
        with pytest.raises(ValueError):
            SloPolicy(itl_deadline=-0.1)

    def test_per_tenant_policy_lookup(self):
        premium = SloPolicy(ttft_deadline=0.1, itl_deadline=0.01)
        cfg = ControlConfig(per_tenant={"lora-vip": premium})
        assert cfg.policy_for("lora-vip") is premium
        assert cfg.policy_for("lora-other") is cfg.default_policy

    def test_predictive_validation(self):
        with pytest.raises(ValueError):
            PredictiveConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            PredictiveConfig(ewma_alpha=1.5)
        with pytest.raises(ValueError):
            PredictiveConfig(service_rate_per_gpu=0.0)
        with pytest.raises(ValueError):
            PredictiveConfig(headroom_fraction=-0.1)


class TestEwmaForecast:
    def test_primes_on_first_sample(self):
        f = EwmaForecast(alpha=0.5)
        assert f.update(10.0) == 10.0

    def test_smooths_toward_samples(self):
        f = EwmaForecast(alpha=0.5)
        f.update(0.0)
        assert f.update(8.0) == 4.0
        assert f.update(8.0) == 6.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaForecast(alpha=0.0)


class TestFleetCostModel:
    def test_h100_prefill_beats_l4(self):
        cost = FleetCostModel()
        req = make_request("r", prompt=768)
        h100 = make_engine("h", preset="h100")
        l4 = make_engine("l", preset="l4")
        assert cost.predict_ttft(h100, req) < cost.predict_ttft(l4, req)

    def test_bandwidth_rules_decode(self):
        cost = FleetCostModel()
        req = make_request("r", prompt=512)
        a100 = make_engine("a", preset="a100-80g")
        l4 = make_engine("l", preset="l4")
        # Decode is memory-bound: 1935 GB/s vs 300 GB/s.
        assert cost.predict_itl(a100, req) < cost.predict_itl(l4, req)

    def test_load_stall_by_residency_tier(self):
        cost = FleetCostModel()
        req = make_request("r")
        for tier, expected in (
            (2, 0.0),
            (1, cost.host_load_seconds),
            (0, cost.disk_load_seconds),
        ):
            engine = types.SimpleNamespace(adapter_tier=lambda _l, t=tier: t)
            assert cost.load_stall(engine, req) == expected

    def test_optimistic_floor_is_a_lower_bound_and_cached(self):
        cost = FleetCostModel()
        engine = make_engine("g")
        req = make_request("r", prompt=256)
        floor = cost.optimistic_floor(engine, req)
        assert 0.0 < floor <= cost.predict_ttft(engine, req)
        # Busy the engine: the floor must not move (it is state-free).
        engine.add_request(make_request("other", prompt=256), 0.0)
        assert cost.optimistic_floor(engine, req) == floor
        assert cost.predict_ttft(engine, req) > floor

    def test_estimate_headroom_goes_negative_past_deadline(self):
        control = ControlConfig(
            default_policy=SloPolicy(ttft_deadline=0.5, itl_deadline=0.05)
        )
        cost = FleetCostModel(control)
        engine = make_engine("g")
        est = cost.estimate(engine, make_request("r", arrival=0.0), now=10.0)
        assert est.ttft_headroom < 0
        assert est.fitness < 0

    def test_fleet_cost_sums_presets_and_defaults_unpriced_specs(self):
        engines = [
            make_engine("h", preset="h100"),
            make_engine("l", preset="l4"),
        ]
        assert FleetCostModel.fleet_cost_per_hour(engines) == pytest.approx(2.25)
        plain = GpuEngine(
            "p", SimulatedBackend(LLAMA2_7B), EngineConfig(max_batch_size=2)
        )
        assert FleetCostModel.engine_cost_per_hour(plain) == 1.0


class TestSloRouter:
    def _router(self, engines, ttft=100.0, itl=1.0, tracer=None):
        control = ControlConfig(
            default_policy=SloPolicy(ttft_deadline=ttft, itl_deadline=itl)
        )
        return SloRouter(engines, tracer=tracer, control=control)

    def test_prefill_heavy_request_routes_to_the_h100(self):
        router = self._router(
            [make_engine("l4-0", preset="l4"), make_engine("h100-0", preset="h100")]
        )
        gpu = router.submit(make_request("r", prompt=768), 0.0)
        assert gpu == "h100-0"

    def test_decode_admission_prefers_bandwidth(self):
        router = self._router(
            [make_engine("l4-0", preset="l4"), make_engine("a100-0")]
        )
        assert router.route_decode(make_request("r", prompt=512), 512) == "a100-0"

    def test_queue_drains_in_deadline_order_not_fcfs(self):
        tracer = Tracer()
        blocker = make_engine("g0", max_batch=1)
        blocker.add_request(make_request("hog"), 0.0)
        router = self._router([blocker], ttft=100.0, tracer=tracer)
        # Submit the *later* deadline first: FCFS would drain it first,
        # EDF must not.
        late = make_request("late", arrival=5.0)
        early = make_request("early", arrival=1.0)
        assert router.submit(late, 6.0) is None
        assert router.submit(early, 6.0) is None
        assert router.queue_depth == 2
        router.add_engine(make_engine("g1", max_batch=4))
        placed = router.drain_queue(7.0)
        assert placed == ["g1", "g1"]
        admits = [
            e.request_id for e in tracer.by_kind(EventKind.SLO_ADMIT)
        ]
        assert admits == ["early", "late"]

    def test_negative_headroom_still_places_best_effort(self):
        router = self._router([make_engine("g")], ttft=0.001)
        req = make_request("r", prompt=512)
        assert router.submit(req, 0.0) == "g"
        assert req.state is RequestState.RUNNING
        assert router.num_slo_sheds == 0

    def test_hopeless_request_is_shed_not_queued(self):
        tracer = Tracer()
        blocker = make_engine("g", max_batch=1)
        blocker.add_request(make_request("hog"), 0.0)
        router = self._router([blocker], ttft=0.5, tracer=tracer)
        req = make_request("r", arrival=0.0)
        assert router.submit(req, 10.0) is None
        assert req.state is RequestState.FAILED
        assert router.num_slo_sheds == 1
        assert router.queue_depth == 0
        sheds = tracer.by_kind(EventKind.SLO_SHED)
        assert [e.request_id for e in sheds] == ["r"]
        assert sheds[0].attrs["reason"] == "deadline_infeasible"
        assert sheds[0].attrs["budget"] < 0

    def test_queued_request_sheds_once_budget_drops_below_floor(self):
        blocker = make_engine("g", max_batch=1)
        blocker.add_request(make_request("hog"), 0.0)
        router = self._router([blocker], ttft=2.0)
        req = make_request("r", arrival=0.0)
        router.submit(req, 0.1)
        assert router.queue_depth == 1
        router.drain_queue(50.0)
        assert req.state is RequestState.FAILED
        assert router.num_slo_sheds == 1

    def test_shedding_can_be_disabled(self):
        blocker = make_engine("g", max_batch=1)
        blocker.add_request(make_request("hog"), 0.0)
        control = ControlConfig(
            default_policy=SloPolicy(ttft_deadline=0.5, itl_deadline=1.0),
            shed_infeasible=False,
        )
        router = SloRouter([blocker], control=control)
        req = make_request("r", arrival=0.0)
        assert router.submit(req, 10.0) is None
        assert req.state is not RequestState.FAILED
        assert router.queue_depth == 1

    def test_install_guard_rejects_live_queues(self):
        sim = ClusterSimulator([make_engine("g", max_batch=1)])
        sim.scheduler.engines["g"].add_request(make_request("hog"), 0.0)
        sim.scheduler.submit(make_request("r"), 0.0)
        assert sim.scheduler.queue_depth == 1
        with pytest.raises(RuntimeError, match="before submitting"):
            install_slo_router(sim)


class TestSloClusterSimulator:
    def test_attainment_recorded_and_matches_helper(self):
        control = ControlConfig(
            default_policy=SloPolicy(ttft_deadline=1.0, itl_deadline=0.25)
        )
        sim = SloClusterSimulator(
            [make_engine(f"g{i}") for i in range(2)], control=control
        )
        result = sim.run(make_trace())
        assert result.requests
        recorded = sim.metrics.slo_attainment()
        assert recorded == pytest.approx(
            slo_attainment(result.requests, control, result.duration)
        )
        assert (
            sim.metrics.slo_attained_count() + sim.metrics.slo_missed_count()
            == len(result.requests)
        )

    def test_deterministic(self):
        def run():
            tracer = Tracer()
            sim = SloClusterSimulator(
                [make_engine(f"g{i}", step_overhead=0.01) for i in range(2)],
                tracer=tracer,
            )
            sim.run(make_trace(rate=12.0))
            return tracer.dumps_jsonl()

        assert run() == run()

    def test_cancelled_requests_are_not_scored(self):
        control = ControlConfig()
        req = make_request("r")
        req.mark_cancelled()
        assert score_requests([req], control, 1.0) == []
        assert slo_attainment([req], control, 1.0) == 0.0


class TestPredictiveAutoscaler:
    def _sim(self, tracer=None, **cfg):
        defaults = dict(
            min_gpus=1, max_gpus=4, provision_delay=1.0,
            release_idle_after=0.5, check_interval=0.5,
        )
        defaults.update(cfg)
        return PredictiveElasticSimulator(
            lambda gid: make_engine(gid, max_batch=4),
            elastic_config=ElasticConfig(**defaults),
            predictive=PredictiveConfig(service_rate_per_gpu=2.0),
            tracer=tracer,
        )

    def test_burst_grows_the_pool_ahead_of_the_queue(self):
        tracer = Tracer()
        sim = self._sim(tracer=tracer)
        result = sim.run_elastic(make_trace(rate=12.0, duration=3.0))
        assert result.scale_ups > 0
        ups = tracer.by_kind(EventKind.SCALE_UP)
        assert ups and all(e.attrs["forecast"] > 0 for e in ups)
        # Forecast sizing can add several GPUs in one decision.
        assert sum(e.attrs["add"] for e in ups) == result.scale_ups

    def test_drain_tail_releases_back_to_the_floor(self):
        tracer = Tracer()
        sim = self._sim(tracer=tracer)
        result = sim.run_elastic(make_trace(rate=12.0, duration=2.0))
        assert result.releases > 0
        assert len(sim.scheduler.engines) == 1
        downs = tracer.by_kind(EventKind.SCALE_DOWN)
        assert len(downs) == result.releases
        assert all(e.gpu_id is not None for e in downs)

    def test_warm_up_veto_blocks_immediate_release(self):
        # Grace period far below the provisioning delay: without the
        # warm-up veto every landed GPU would be released the tick after
        # its burst passed, before amortizing its provisioning cost.
        sim = self._sim(provision_delay=2.0, release_idle_after=0.1)
        result = sim.run_elastic(make_trace(rate=12.0, duration=2.0))
        closed = [l for l in result.leases if l.end is not None]
        assert closed, "expected the drain tail to release grown GPUs"
        for lease in closed:
            assert lease.end - lease.start >= 2.0

    def test_deterministic(self):
        r1 = self._sim().run_elastic(make_trace(seed=3, rate=12.0))
        r2 = self._sim().run_elastic(make_trace(seed=3, rate=12.0))
        assert r1.gpu_seconds() == r2.gpu_seconds()
        assert r1.scale_ups == r2.scale_ups


class TestRebalanceRoles:
    def _scheduler(self, roles, idle=True, queue_depth=0):
        engines = {
            gid: types.SimpleNamespace(role=role, is_idle=idle)
            for gid, role in roles.items()
        }
        return types.SimpleNamespace(engines=engines, queue_depth=queue_depth)

    def test_flips_idle_prefill_toward_decode_backlog(self):
        sched = self._scheduler({"p0": "prefill", "d0": "decode"})
        assert rebalance_roles(sched, decode_backlog=3) == "p0"
        assert sched.engines["p0"].role == "decode"

    def test_flips_idle_decode_toward_prefill_backlog(self):
        sched = self._scheduler(
            {"p0": "prefill", "d0": "decode"}, queue_depth=2
        )
        assert rebalance_roles(sched, decode_backlog=0) == "d0"
        assert sched.engines["d0"].role == "prefill"

    def test_no_flip_when_both_sides_backlogged_or_busy(self):
        both = self._scheduler(
            {"p0": "prefill", "d0": "decode"}, queue_depth=2
        )
        assert rebalance_roles(both, decode_backlog=2) is None
        busy = self._scheduler({"p0": "prefill"}, idle=False)
        assert rebalance_roles(busy, decode_backlog=3) is None
        assert busy.engines["p0"].role == "prefill"


class TestSloDisagg:
    def test_late_waiters_shed_but_delivered_requests_keep_their_place(self):
        from repro.hw.interconnect import InterconnectSpec

        slow_wire = InterconnectSpec(
            name="slow", bus_bandwidth=1e9, latency=0.6
        )
        from repro.cluster.disagg import DisaggConfig

        tracer = Tracer()
        control = ControlConfig(
            default_policy=SloPolicy(ttft_deadline=0.5, itl_deadline=1.0)
        )
        sim = SloDisaggSimulator(
            [make_engine("p0")], [make_engine("d0")],
            control=control,
            config=DisaggConfig(interconnect=slow_wire),
            tracer=tracer,
        )
        result = sim.run(make_trace(n=6, rate=4.0, duration=1.0))
        # Every handoff lands after the 0.6 s wire beats the 0.5 s TTFT
        # deadline: all first-token waiters are shed at the EDF drain.
        sheds = tracer.by_kind(EventKind.SLO_SHED)
        assert sheds
        shed_ids = {e.request_id for e in sheds}
        for req in result.requests:
            if req.request_id in shed_ids:
                assert req.state is RequestState.FAILED
        assert sim.metrics.slo_shed_count() == len(sheds)

    def test_drain_guard_never_sheds_a_delivered_request(self):
        import heapq

        control = ControlConfig(
            default_policy=SloPolicy(ttft_deadline=0.5, itl_deadline=1.0)
        )
        sim = SloDisaggSimulator(
            [make_engine("p0")], [make_engine("d0")], control=control
        )
        # Simulate a re-transfer after a mid-decode migration: the waiter
        # already has its first token, so however late the clock runs the
        # EDF drain must route it instead of shedding.
        req = make_request("r", prompt=16, response=8)
        req.needs_prefill = False
        req.mark_running("p0", 0.0)
        req.first_token_time = 0.2
        heapq.heappush(sim._decode_queue, (10.0, 0, req, 16))
        handled = sim._drain_decode_queue(10.0)
        assert handled == ["r"]
        assert req.state is not RequestState.FAILED
        assert sim.scheduler.engines["d0"].has_request("r")

    def test_deterministic(self):
        def run():
            tracer = Tracer()
            sim = SloDisaggSimulator(
                [make_engine("p0"), make_engine("p1")],
                [make_engine("d0"), make_engine("d1")],
                control=ControlConfig(
                    default_policy=SloPolicy(
                        ttft_deadline=0.8, itl_deadline=0.25
                    )
                ),
                tracer=tracer,
            )
            sim.run(make_trace(rate=10.0))
            return tracer.dumps_jsonl()

        assert run() == run()
