"""Unit tests for the speculative decoding lane (simulated backend).

Covers the :class:`SpecConfig` validation contract, the engine's arming
checks, the geometric acceptance model's commit/rollback page accounting
at both extremes, the speculative trace-event vocabulary, and the
multi-token :class:`StepReport` surface the cluster layers consume.
"""

from __future__ import annotations

import pytest

from repro.models.config import LLAMA2_7B
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine, StepReport
from repro.runtime.request import RequestState
from repro.runtime.serve import requests_from_trace, serve_requests
from repro.runtime.spec import SpecConfig
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace


class TestSpecConfigValidation:
    def test_defaults_valid(self):
        spec = SpecConfig()
        assert spec.draft_len == 4
        assert spec.max_tokens_per_round == 5

    @pytest.mark.parametrize("draft_len", [0, -1, -7])
    def test_rejects_nonpositive_draft_len(self, draft_len):
        with pytest.raises(ValueError, match="draft_len must be >= 1"):
            SpecConfig(draft_len=draft_len)

    @pytest.mark.parametrize("rate", [-0.1, 1.01, 2.0, -5.0])
    def test_rejects_acceptance_outside_unit_interval(self, rate):
        with pytest.raises(
            ValueError, match=r"acceptance_rate must be within \[0, 1\]"
        ):
            SpecConfig(acceptance_rate=rate)

    @pytest.mark.parametrize("rate", [0.0, 1.0])
    def test_acceptance_extremes_are_valid(self, rate):
        assert SpecConfig(acceptance_rate=rate).acceptance_rate == rate

    @pytest.mark.parametrize("ratio", [0.0, -0.5, 1.5])
    def test_rejects_bad_draft_cost_ratio(self, ratio):
        with pytest.raises(ValueError, match="draft_cost_ratio"):
            SpecConfig(draft_cost_ratio=ratio)

    @pytest.mark.parametrize("layers", [0, -1])
    def test_rejects_nonpositive_draft_layers(self, layers):
        with pytest.raises(ValueError, match="draft_layers must be >= 1"):
            SpecConfig(draft_layers=layers)

    def test_max_tokens_per_round(self):
        assert SpecConfig(draft_len=7).max_tokens_per_round == 8


class TestEngineArming:
    def test_rejects_backend_without_execute_spec(self):
        class NoSpecBackend:
            pass

        with pytest.raises(ValueError, match="has no execute_spec"):
            GpuEngine(
                "gpu0", NoSpecBackend(), EngineConfig(spec=SpecConfig())
            )

    def test_disarmed_engine_accepts_any_backend(self):
        class NoSpecBackend:
            pass

        engine = GpuEngine("gpu0", NoSpecBackend(), EngineConfig())
        assert engine._spec is None
        assert engine.spec_rounds == 0

    def test_spec_seed_is_per_gpu(self):
        spec = SpecConfig(seed=3)
        a = GpuEngine("gpu0", SimulatedBackend(LLAMA2_7B), EngineConfig(spec=spec))
        b = GpuEngine("gpu1", SimulatedBackend(LLAMA2_7B), EngineConfig(spec=spec))
        assert a._spec_rng.random() != b._spec_rng.random()


def run_simulated(spec, n_requests=6, seed=0, tracer=None, **backend_kwargs):
    lengths = ShareGptLengths(max_prompt_len=32, max_response_len=16)
    trace = generate_trace(n_requests, "distinct", seed=seed, lengths=lengths)
    backend = SimulatedBackend(LLAMA2_7B, **backend_kwargs)
    engine = GpuEngine(
        "gpu0", backend, EngineConfig(max_batch_size=8, spec=spec)
    )
    reqs = requests_from_trace(trace)
    result = serve_requests(engine, reqs, tracer=tracer)
    return backend, engine, reqs, result


class TestSimulatedSpecRounds:
    def test_all_requests_finish_and_pages_return(self):
        backend, engine, reqs, result = run_simulated(SpecConfig(draft_len=4))
        assert all(r.state is RequestState.FINISHED for r in reqs)
        for r in reqs:
            assert r.num_generated == r.spec.response_len
        assert engine.spec_rounds > 0
        # Commit/rollback accounting nets out: every page is back.
        assert backend.kv.allocator.used_pages == 0

    def test_acceptance_one_commits_full_bursts(self):
        tracer = Tracer()
        _, engine, reqs, _ = run_simulated(
            SpecConfig(draft_len=4, acceptance_rate=1.0), tracer=tracer
        )
        verifies = tracer.by_kind(EventKind.SPEC_VERIFY)
        assert verifies
        for event in verifies:
            assert event.attrs["accepted"] == 4
            # Committed is accepted + bonus unless EOS/limit clipped it.
            assert 1 <= event.attrs["committed"] <= 5
        # Full bursts make rounds scarce: well under one per token.
        total = sum(r.num_generated for r in reqs)
        assert engine.spec_rounds <= total / 2

    def test_acceptance_zero_commits_one_per_round(self):
        tracer = Tracer()
        _, engine, _, _ = run_simulated(
            SpecConfig(draft_len=4, acceptance_rate=0.0), tracer=tracer
        )
        for event in tracer.by_kind(EventKind.SPEC_VERIFY):
            assert event.attrs["accepted"] == 0
            assert event.attrs["committed"] == 1
        # Every round rejected its whole draft: rollbacks everywhere.
        rollbacks = tracer.by_kind(EventKind.SPEC_ROLLBACK)
        assert rollbacks
        for event in rollbacks:
            assert event.attrs["tokens"] == 4

    def test_spec_trace_vocabulary(self):
        tracer = Tracer()
        run_simulated(SpecConfig(draft_len=4, acceptance_rate=0.7), tracer=tracer)
        kinds = {e.kind for e in tracer.events}
        assert EventKind.SPEC_DRAFT in kinds
        assert EventKind.SPEC_VERIFY in kinds
        assert EventKind.SPEC_ROLLBACK in kinds
        for event in tracer.by_kind(EventKind.SPEC_DRAFT):
            assert event.attrs["draft_len"] == 4
            assert event.attrs["batch"] >= 1

    def test_decode_steps_match_generated_tokens(self):
        """One DECODE_STEP per committed token, contiguous token_index —
        the kv_len = tokens - 1 bookkeeping made observable."""
        tracer = Tracer()
        _, _, reqs, _ = run_simulated(
            SpecConfig(draft_len=3, acceptance_rate=0.6), tracer=tracer
        )
        steps: "dict[str, list[int]]" = {}
        for event in tracer.by_kind(EventKind.DECODE_STEP):
            steps.setdefault(event.request_id, []).append(
                event.attrs["token_index"]
            )
        for r in reqs:
            # The first token lands with the prefill; the rest decode.
            assert steps[r.request_id] == list(range(1, r.num_generated))

    def test_spec_rounds_zero_when_disarmed(self):
        _, engine, _, _ = run_simulated(None)
        assert engine.spec_rounds == 0

    def test_spec_respects_response_limit(self):
        """Bursts never overshoot: the commit clips at response_len even
        when the round proposed more."""
        _, _, reqs, _ = run_simulated(
            SpecConfig(draft_len=6, acceptance_rate=1.0)
        )
        for r in reqs:
            assert r.num_generated == r.spec.response_len


class TestStepReportSpecSurface:
    def _report(self, committed):
        return StepReport(
            gpu_id="gpu0", start=0.0, latency=0.1, batch_size=2,
            num_prefill=0, num_decode=2, num_lora_segments=1,
            new_tokens={rid: toks[-1] for rid, toks in committed.items()},
            finished=(), evicted=(), committed=committed,
        )

    def test_tokens_generated_sums_bursts(self):
        report = self._report({"a": (1, 2, 3), "b": (4,)})
        assert report.tokens_generated == 4
        assert report.committed_tokens() == {"a": (1, 2, 3), "b": (4,)}

    def test_classic_report_is_singleton_per_request(self):
        report = StepReport(
            gpu_id="gpu0", start=0.0, latency=0.1, batch_size=2,
            num_prefill=0, num_decode=2, num_lora_segments=1,
            new_tokens={"a": 3, "b": 4}, finished=(), evicted=(),
        )
        assert report.committed is None
        assert report.tokens_generated == 2
        assert report.committed_tokens() == {"a": (3,), "b": (4,)}
