"""Tests for the NvSwitch all-reduce cost model (tensor parallelism)."""

import pytest

from repro.hw.interconnect import NVLINK_A100, InterconnectSpec


class TestAllreduce:
    def test_single_gpu_free(self):
        assert NVLINK_A100.allreduce_time(1e9, 1) == 0.0

    def test_zero_bytes_free(self):
        assert NVLINK_A100.allreduce_time(0, 8) == 0.0

    def test_ring_scaling(self):
        # 2*(k-1)/k * n / bw: going 2 -> 8 GPUs increases wire time by 7/4.
        t2 = NVLINK_A100.allreduce_time(1e9, 2) - NVLINK_A100.latency
        t8 = NVLINK_A100.allreduce_time(1e9, 8) - NVLINK_A100.latency
        assert t8 / t2 == pytest.approx((2 * 7 / 8) / (2 * 1 / 2), rel=1e-6)

    def test_latency_floor(self):
        assert NVLINK_A100.allreduce_time(1, 8) >= NVLINK_A100.latency

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            NVLINK_A100.allreduce_time(1.0, 0)


class TestAllgather:
    def test_cheaper_than_allreduce(self):
        assert NVLINK_A100.allgather_time(1e9, 8) < NVLINK_A100.allreduce_time(1e9, 8)

    def test_single_gpu_free(self):
        assert NVLINK_A100.allgather_time(1e9, 1) == 0.0


class TestSpecValidation:
    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectSpec(name="bad", bus_bandwidth=0)
