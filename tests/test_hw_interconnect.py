"""Tests for the NvSwitch all-reduce cost model (tensor parallelism)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.interconnect import NVLINK_A100, PCIE_GEN4_P2P, InterconnectSpec


class TestAllreduce:
    def test_single_gpu_free(self):
        assert NVLINK_A100.allreduce_time(1e9, 1) == 0.0

    def test_zero_bytes_free(self):
        assert NVLINK_A100.allreduce_time(0, 8) == 0.0

    def test_ring_scaling(self):
        # 2*(k-1)/k * n / bw: going 2 -> 8 GPUs increases wire time by 7/4.
        t2 = NVLINK_A100.allreduce_time(1e9, 2) - NVLINK_A100.latency
        t8 = NVLINK_A100.allreduce_time(1e9, 8) - NVLINK_A100.latency
        assert t8 / t2 == pytest.approx((2 * 7 / 8) / (2 * 1 / 2), rel=1e-6)

    def test_latency_floor(self):
        assert NVLINK_A100.allreduce_time(1, 8) >= NVLINK_A100.latency

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            NVLINK_A100.allreduce_time(1.0, 0)


class TestAllgather:
    def test_cheaper_than_allreduce(self):
        assert NVLINK_A100.allgather_time(1e9, 8) < NVLINK_A100.allreduce_time(1e9, 8)

    def test_single_gpu_free(self):
        assert NVLINK_A100.allgather_time(1e9, 1) == 0.0


class TestSpecValidation:
    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectSpec(name="bad", bus_bandwidth=0)


class TestTransferTime:
    def test_zero_bytes_free(self):
        assert NVLINK_A100.transfer_time(0) == 0.0

    def test_latency_dominates_small_messages(self):
        # One byte is pure wire latency to ~9 significant digits.
        t = NVLINK_A100.transfer_time(1)
        assert t == pytest.approx(NVLINK_A100.latency, rel=1e-6)
        assert t > NVLINK_A100.latency

    def test_bandwidth_dominates_large_messages(self):
        nbytes = 100e9
        t = NVLINK_A100.transfer_time(nbytes)
        assert t == pytest.approx(nbytes / NVLINK_A100.bus_bandwidth, rel=1e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NVLINK_A100.transfer_time(-1)

    def test_pcie_slower_than_nvlink(self):
        assert PCIE_GEN4_P2P.transfer_time(1e9) > NVLINK_A100.transfer_time(1e9)


nbytes_st = st.floats(min_value=0, max_value=1e12, allow_nan=False)


class TestTransferProperties:
    @given(a=nbytes_st, b=nbytes_st)
    def test_monotone_in_nbytes(self, a, b):
        lo, hi = sorted((a, b))
        assert NVLINK_A100.transfer_time(lo) <= NVLINK_A100.transfer_time(hi)

    @given(nbytes=nbytes_st)
    def test_positive_payload_costs_at_least_latency(self, nbytes):
        t = NVLINK_A100.transfer_time(nbytes)
        if nbytes == 0:
            assert t == 0.0
        else:
            assert t >= NVLINK_A100.latency

    @given(nbytes=st.floats(min_value=1, max_value=1e12, allow_nan=False))
    def test_nvlink_never_slower_than_pcie(self, nbytes):
        # NVLINK_A100 has both higher bandwidth and lower latency, so the
        # ordering must hold for every payload size.
        assert NVLINK_A100.transfer_time(nbytes) <= PCIE_GEN4_P2P.transfer_time(nbytes)

    @given(nbytes=nbytes_st)
    def test_collectives_free_on_one_gpu_but_transfer_is_not(self, nbytes):
        # world_size==1 makes the collectives free; a point-to-point
        # transfer has no such degenerate case — it always crosses a link.
        assert NVLINK_A100.allreduce_time(nbytes, 1) == 0.0
        assert NVLINK_A100.allgather_time(nbytes, 1) == 0.0
        if nbytes > 0:
            assert NVLINK_A100.transfer_time(nbytes) > 0.0
