"""Tests for the analytical step latency model — calibrated against Fig 1/10."""

import pytest

from repro.hw.interconnect import NVLINK_A100
from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_40G, A100_80G
from repro.models.config import LLAMA2_7B, LLAMA2_13B, LLAMA2_70B
from repro.models.perf import (
    PerfFlags,
    StepWorkload,
    decode_step_workload,
    model_step_latency,
    transformer_layer_latency,
)
from repro.models.tp import TensorParallelConfig
from repro.utils.units import MS


@pytest.fixture(scope="module")
def kcm():
    return KernelCostModel(A100_80G)


def decode_work(bs, kv_len, distinct=True):
    segs = [1] * bs if distinct else [bs]
    return decode_step_workload([kv_len] * bs, lora_segments=segs)


class TestStepWorkload:
    def test_token_accounting(self):
        w = StepWorkload(prefill_lens=(10,), decode_kv_lens=(5, 5, 5))
        assert w.num_tokens == 13
        assert w.batch_size == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StepWorkload()

    def test_segment_coverage_checked(self):
        with pytest.raises(ValueError, match="cover"):
            StepWorkload(decode_kv_lens=(1, 1), lora_segments=(1,))

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            StepWorkload(prefill_lens=(0,))
        with pytest.raises(ValueError):
            StepWorkload(decode_kv_lens=(-1,))


class TestFig1Calibration:
    """Paper Fig 1: decode bs 1->32 goes 11->13ms (short) and 17->34ms (long)."""

    def test_decode_bs1_short_near_11ms(self, kcm):
        t = model_step_latency(LLAMA2_7B, kcm, decode_work(1, 128))
        assert 9 * MS < t < 16 * MS

    def test_decode_bs32_short_near_13ms(self, kcm):
        t = model_step_latency(LLAMA2_7B, kcm, decode_work(32, 128))
        assert 11 * MS < t < 21 * MS

    def test_decode_bs32_long_near_34ms(self, kcm):
        t = model_step_latency(LLAMA2_7B, kcm, decode_work(32, 2048))
        assert 28 * MS < t < 55 * MS

    def test_decode_batching_nearly_free_short(self, kcm):
        t1 = model_step_latency(LLAMA2_7B, kcm, decode_work(1, 128))
        t32 = model_step_latency(LLAMA2_7B, kcm, decode_work(32, 128))
        assert t32 < 1.5 * t1  # paper: 11 -> 13 ms

    def test_prefill_latency_proportional_to_batch(self, kcm):
        # Fig 1: prefill is compute-bound, latency ~ batch size.
        t1 = model_step_latency(LLAMA2_7B, kcm, StepWorkload(prefill_lens=(512,)))
        t4 = model_step_latency(LLAMA2_7B, kcm, StepWorkload(prefill_lens=(512,) * 4))
        assert 2.5 < t4 / t1 < 4.5


class TestFig10LayerShape:
    """Fig 10: layer latency across workloads nearly identical; batching
    effect stronger at short sequence length."""

    def test_workload_agnostic_layer_latency(self, kcm):
        # LoRA addon is small vs backbone: distinct vs identical within 15%.
        distinct = transformer_layer_latency(LLAMA2_7B, kcm, decode_work(32, 512))
        identical = transformer_layer_latency(
            LLAMA2_7B, kcm, decode_work(32, 512, distinct=False)
        )
        assert abs(distinct - identical) / identical < 0.15

    def test_batching_effect_stronger_for_short_seq(self, kcm):
        def growth(kv):
            t1 = transformer_layer_latency(LLAMA2_7B, kcm, decode_work(1, kv))
            t32 = transformer_layer_latency(LLAMA2_7B, kcm, decode_work(32, kv))
            return t32 / t1
        assert growth(512) < growth(2048)

    def test_layer_latency_increase_bounded_short(self, kcm):
        # Paper: +72% going bs 1 -> 32 at seq 512.
        t1 = transformer_layer_latency(LLAMA2_7B, kcm, decode_work(1, 512))
        t32 = transformer_layer_latency(LLAMA2_7B, kcm, decode_work(32, 512))
        assert 1.2 < t32 / t1 < 2.6

    def test_13b_slower_than_7b(self, kcm):
        t7 = transformer_layer_latency(LLAMA2_7B, kcm, decode_work(8, 512))
        t13 = transformer_layer_latency(LLAMA2_13B, kcm, decode_work(8, 512))
        assert t13 > t7


class TestBaselineFlags:
    def test_unfused_layernorm_and_overhead_slower(self, kcm):
        fast = model_step_latency(LLAMA2_7B, kcm, decode_work(8, 512))
        slow = model_step_latency(
            LLAMA2_7B,
            kcm,
            decode_work(8, 512),
            flags=PerfFlags(
                flash_attention=False,
                fused_layernorm=False,
                cache_concat=True,
                framework_overhead_per_layer=50e-6,
            ),
        )
        assert slow > fast * 1.2

    def test_cache_concat_costs_grow_with_history(self, kcm):
        flags = PerfFlags(cache_concat=True)
        short = model_step_latency(LLAMA2_7B, kcm, decode_work(8, 128), flags=flags)
        long = model_step_latency(LLAMA2_7B, kcm, decode_work(8, 2048), flags=flags)
        base_short = model_step_latency(LLAMA2_7B, kcm, decode_work(8, 128))
        base_long = model_step_latency(LLAMA2_7B, kcm, decode_work(8, 2048))
        assert (long - base_long) > (short - base_short)


class TestTensorParallel70B:
    def test_70b_step_under_8way_tp(self):
        kcm40 = KernelCostModel(A100_40G)
        tp = TensorParallelConfig(world_size=8, interconnect=NVLINK_A100)
        t = model_step_latency(LLAMA2_70B, kcm40, decode_work(32, 512), tp=tp)
        # Fig 12: Punica sustains ~441-446 tok/s at bs32 -> ~70ms/step. Our
        # model lands somewhat faster (it omits multi-GPU kernel-sync jitter)
        # but the same order of magnitude.
        assert 30 * MS < t < 110 * MS

    def test_tp_speeds_up_decode(self):
        kcm40 = KernelCostModel(A100_40G)
        tp8 = TensorParallelConfig(world_size=8, interconnect=NVLINK_A100)
        t1 = model_step_latency(LLAMA2_70B, kcm40, decode_work(8, 512))
        t8 = model_step_latency(LLAMA2_70B, kcm40, decode_work(8, 512), tp=tp8)
        assert t8 < t1 / 3

    def test_allreduce_overhead_nonzero(self):
        tp = TensorParallelConfig(world_size=8, interconnect=NVLINK_A100)
        assert tp.layer_allreduce_time(LLAMA2_70B, 32) > 0

    def test_indivisible_tp_rejected(self):
        tp = TensorParallelConfig(world_size=7, interconnect=NVLINK_A100)
        with pytest.raises(ValueError):
            tp.validate_for(LLAMA2_70B)

    def test_world_size_one_needs_no_interconnect(self):
        tp = TensorParallelConfig(world_size=1)
        assert tp.layer_allreduce_time(LLAMA2_70B, 32) == 0.0

    def test_multi_gpu_needs_interconnect(self):
        with pytest.raises(ValueError, match="interconnect"):
            TensorParallelConfig(world_size=8)

    def test_weight_bytes_sharded(self):
        tp = TensorParallelConfig(world_size=8, interconnect=NVLINK_A100)
        assert tp.weight_bytes_per_gpu(LLAMA2_70B) == LLAMA2_70B.weight_bytes() // 8
