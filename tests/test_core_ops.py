"""Tests that Loop, Gather-BMM and SGMV LoRA operators agree numerically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import (
    add_lora_gather_bmm,
    add_lora_loop,
    add_lora_sgmv,
    gather_weights,
)
from repro.core.segments import segments_from_sizes
from repro.utils.rng import new_rng

ALL_OPS = [add_lora_loop, add_lora_gather_bmm, add_lora_sgmv]


def make_problem(sizes, h_in=24, h_out=20, rank=4, seed=0):
    rng = new_rng(seed)
    seg = segments_from_sizes(sizes)
    bs, n = int(seg[-1]), len(sizes)
    x = rng.standard_normal((bs, h_in))
    wa = rng.standard_normal((n, h_in, rank))
    wb = rng.standard_normal((n, rank, h_out))
    y0 = rng.standard_normal((bs, h_out))
    return seg, x, wa, wb, y0


class TestOperatorEquivalence:
    @pytest.mark.parametrize("op", ALL_OPS)
    def test_matches_direct_computation(self, op):
        seg, x, wa, wb, y0 = make_problem([2, 3, 1])
        y = op(y0.copy(), x, wa, wb, seg)
        expected = y0.copy()
        for i in range(3):
            lo, hi = int(seg[i]), int(seg[i + 1])
            expected[lo:hi] += x[lo:hi] @ wa[i] @ wb[i]
        np.testing.assert_allclose(y, expected, rtol=1e-10)

    def test_three_implementations_agree(self):
        seg, x, wa, wb, y0 = make_problem([1, 1, 4, 2], seed=3)
        results = [op(y0.copy(), x, wa, wb, seg) for op in ALL_OPS]
        np.testing.assert_allclose(results[0], results[1], rtol=1e-10)
        np.testing.assert_allclose(results[0], results[2], rtol=1e-10)

    @given(
        st.lists(st.integers(1, 5), min_size=1, max_size=6),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_agreement_property(self, sizes, seed):
        seg, x, wa, wb, y0 = make_problem(sizes, seed=seed)
        loop = add_lora_loop(y0.copy(), x, wa, wb, seg)
        gbmm = add_lora_gather_bmm(y0.copy(), x, wa, wb, seg)
        sgmv = add_lora_sgmv(y0.copy(), x, wa, wb, seg)
        np.testing.assert_allclose(loop, gbmm, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(loop, sgmv, rtol=1e-9, atol=1e-11)

    def test_merged_weight_equivalence(self):
        # x @ (W + A B) == x @ W + sgmv addon — the core LoRA identity.
        rng = new_rng(5)
        seg, x, wa, wb, _ = make_problem([4], h_in=16, h_out=16)
        w = rng.standard_normal((16, 16))
        merged = x @ (w + wa[0] @ wb[0])
        y = x @ w
        add_lora_sgmv(y, x, wa, wb, seg)
        np.testing.assert_allclose(y, merged, rtol=1e-10)


class TestGatherWeights:
    def test_repeats_per_token(self):
        seg = segments_from_sizes([2, 1])
        w = np.arange(2 * 3 * 4).reshape(2, 3, 4).astype(float)
        stacked = gather_weights(w, seg)
        assert stacked.shape == (3, 3, 4)
        np.testing.assert_array_equal(stacked[0], w[0])
        np.testing.assert_array_equal(stacked[1], w[0])
        np.testing.assert_array_equal(stacked[2], w[1])

    def test_extra_memory_exactly_sn_tiles(self):
        # The baseline's cost: s_n stacked tiles vs n originals.
        seg = segments_from_sizes([8, 8])
        w = np.zeros((2, 4, 4))
        assert gather_weights(w, seg).shape[0] == 16


class TestValidation:
    def test_weight_count_mismatch(self):
        seg, x, wa, wb, y0 = make_problem([2, 2])
        with pytest.raises(ValueError, match="models"):
            add_lora_sgmv(y0, x, wa[:1], wb[:1], seg)

    def test_rank_mismatch(self):
        seg, x, wa, wb, y0 = make_problem([2, 2])
        with pytest.raises(ValueError, match="rank"):
            add_lora_sgmv(y0, x, wa, wb[:, :2, :], seg)

    def test_output_shape_mismatch(self):
        seg, x, wa, wb, y0 = make_problem([2, 2])
        with pytest.raises(ValueError, match="y shape"):
            add_lora_sgmv(y0[:, :-1], x, wa, wb, seg)
