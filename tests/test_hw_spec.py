"""Tests for GPU device specs and calibration constants."""

import pytest

from repro.hw.spec import (
    A100_40G,
    A100_80G,
    FP16_BYTES,
    GemvBandwidthModel,
    GpuSpec,
    HwSpec,
)
from repro.utils.units import GB, GIB, TB, US


class TestGpuSpec:
    def test_a100_80g_headline_numbers(self):
        assert A100_80G.peak_fp16_flops == pytest.approx(312 * TB)
        assert A100_80G.hbm_bandwidth == pytest.approx(1935 * GB)
        assert A100_80G.hbm_capacity == 80 * GIB

    def test_a100_40g_bandwidth_lower(self):
        assert A100_40G.hbm_bandwidth < A100_80G.hbm_bandwidth
        assert A100_40G.hbm_capacity == 40 * GIB

    def test_layernorm_calibration(self):
        # Paper §6: fusing LayerNorm reduces 110us to 4us.
        assert A100_80G.fused_layernorm_latency == pytest.approx(4 * US)
        assert A100_80G.unfused_layernorm_latency == pytest.approx(110 * US)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec(name="bad", peak_fp16_flops=0, hbm_bandwidth=1, hbm_capacity=1)

    def test_with_overrides(self):
        slow = A100_80G.with_overrides(hbm_bandwidth=1000 * GB)
        assert slow.hbm_bandwidth == 1000 * GB
        assert slow.peak_fp16_flops == A100_80G.peak_fp16_flops
        # Original untouched (frozen dataclass copy).
        assert A100_80G.hbm_bandwidth == 1935 * GB

    def test_fp16_bytes(self):
        assert FP16_BYTES == 2


class TestHwSpec:
    def test_preset_names(self):
        assert set(HwSpec.preset_names()) == {"a100-80g", "h100", "l4"}

    def test_a100_preset_matches_the_calibration_spec(self):
        spec = HwSpec.preset("a100-80g")
        assert spec.peak_fp16_flops == A100_80G.peak_fp16_flops
        assert spec.hbm_bandwidth == A100_80G.hbm_bandwidth
        assert spec.hbm_capacity == A100_80G.hbm_capacity
        assert spec.cost_per_hour == 1.0

    def test_preset_ordering(self):
        a100, h100, l4 = (
            HwSpec.preset(n) for n in ("a100-80g", "h100", "l4")
        )
        # Faster silicon costs more; the price list is the ablation's
        # equal-spend axis, so the ordering is load-bearing.
        assert h100.peak_fp16_flops > a100.peak_fp16_flops > l4.peak_fp16_flops
        assert h100.hbm_bandwidth > a100.hbm_bandwidth > l4.hbm_bandwidth
        assert h100.cost_per_hour > a100.cost_per_hour > l4.cost_per_hour
        assert l4.hbm_capacity == 24 * GIB

    def test_unknown_preset_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="a100-80g"):
            HwSpec.preset("tpu-v5")

    def test_is_a_gpu_spec(self):
        # HwSpec flows anywhere a GpuSpec does (backend pricing).
        assert isinstance(HwSpec.preset("h100"), GpuSpec)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            HwSpec(name="free", peak_fp16_flops=1, hbm_bandwidth=1,
                   hbm_capacity=1, cost_per_hour=0.0)
        with pytest.raises(ValueError):
            HwSpec(name="bad", peak_fp16_flops=0, hbm_bandwidth=1,
                   hbm_capacity=1, cost_per_hour=1.0)


class TestGemvBandwidthModel:
    def test_monotone_in_rank(self):
        m = GemvBandwidthModel()
        bws = [m.achieved(r) for r in (8, 16, 32, 64)]
        assert bws == sorted(bws)

    def test_saturates_below_max(self):
        m = GemvBandwidthModel()
        assert m.achieved(4096) < m.bw_max

    def test_fig9_fit_points(self):
        # DESIGN.md §5: saturating fit — half speed at rank 8, near-max by 64.
        m = GemvBandwidthModel()
        assert m.achieved(8) == pytest.approx(650 * GB, rel=0.05)
        assert m.achieved(64) == pytest.approx(1156 * GB, rel=0.05)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            GemvBandwidthModel().achieved(0)
