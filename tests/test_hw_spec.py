"""Tests for GPU device specs and calibration constants."""

import pytest

from repro.hw.spec import A100_40G, A100_80G, FP16_BYTES, GemvBandwidthModel, GpuSpec
from repro.utils.units import GB, GIB, TB, US


class TestGpuSpec:
    def test_a100_80g_headline_numbers(self):
        assert A100_80G.peak_fp16_flops == pytest.approx(312 * TB)
        assert A100_80G.hbm_bandwidth == pytest.approx(1935 * GB)
        assert A100_80G.hbm_capacity == 80 * GIB

    def test_a100_40g_bandwidth_lower(self):
        assert A100_40G.hbm_bandwidth < A100_80G.hbm_bandwidth
        assert A100_40G.hbm_capacity == 40 * GIB

    def test_layernorm_calibration(self):
        # Paper §6: fusing LayerNorm reduces 110us to 4us.
        assert A100_80G.fused_layernorm_latency == pytest.approx(4 * US)
        assert A100_80G.unfused_layernorm_latency == pytest.approx(110 * US)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec(name="bad", peak_fp16_flops=0, hbm_bandwidth=1, hbm_capacity=1)

    def test_with_overrides(self):
        slow = A100_80G.with_overrides(hbm_bandwidth=1000 * GB)
        assert slow.hbm_bandwidth == 1000 * GB
        assert slow.peak_fp16_flops == A100_80G.peak_fp16_flops
        # Original untouched (frozen dataclass copy).
        assert A100_80G.hbm_bandwidth == 1935 * GB

    def test_fp16_bytes(self):
        assert FP16_BYTES == 2


class TestGemvBandwidthModel:
    def test_monotone_in_rank(self):
        m = GemvBandwidthModel()
        bws = [m.achieved(r) for r in (8, 16, 32, 64)]
        assert bws == sorted(bws)

    def test_saturates_below_max(self):
        m = GemvBandwidthModel()
        assert m.achieved(4096) < m.bw_max

    def test_fig9_fit_points(self):
        # DESIGN.md §5: saturating fit — half speed at rank 8, near-max by 64.
        m = GemvBandwidthModel()
        assert m.achieved(8) == pytest.approx(650 * GB, rel=0.05)
        assert m.achieved(64) == pytest.approx(1156 * GB, rel=0.05)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            GemvBandwidthModel().achieved(0)
