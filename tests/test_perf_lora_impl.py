"""Tests for the lora_impl switch in the perf model."""

import pytest

from repro.hw.kernels import KernelCostModel
from repro.hw.spec import A100_80G
from repro.models.config import LLAMA2_7B
from repro.models.perf import PerfFlags, decode_step_workload, model_step_latency


@pytest.fixture(scope="module")
def kcm():
    return KernelCostModel(A100_80G)


def step(kcm, impl, segments):
    work = decode_step_workload([512] * sum(segments), lora_segments=segments)
    return model_step_latency(LLAMA2_7B, kcm, work, flags=PerfFlags(lora_impl=impl))


class TestLoraImplFlag:
    def test_ordering_on_distinct(self, kcm):
        segs = [1] * 16
        sgmv = step(kcm, "sgmv", segs)
        gbmm = step(kcm, "gather_bmm", segs)
        loop = step(kcm, "loop", segs)
        assert sgmv < gbmm < loop

    def test_identical_workload_closer(self, kcm):
        # With one shared model the Loop baseline is a single GEMM pair per
        # projection: the gap collapses.
        segs = [16]
        sgmv = step(kcm, "sgmv", segs)
        loop = step(kcm, "loop", segs)
        assert loop < 1.5 * sgmv

    def test_backbone_only_unaffected(self, kcm):
        work = decode_step_workload([512] * 8, lora_segments=None)
        a = model_step_latency(LLAMA2_7B, kcm, work, flags=PerfFlags(lora_impl="sgmv"))
        b = model_step_latency(LLAMA2_7B, kcm, work, flags=PerfFlags(lora_impl="loop"))
        assert a == b

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError, match="lora_impl"):
            PerfFlags(lora_impl="magic")
