"""The vectorized ``fig13_1m`` scale-trace generator.

Tier-1 pins everything cheap about the generator — determinism, bounds,
self-similar shrinking, Zipf skew, ramp shape — on small fractions. The
full million-request run lives in ``test_scale_million.py`` behind the
``scale`` marker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.scale import FIG13_1M, ScaleScenario, fig13_1m_trace, scale_trace


def tiny(n=2000, **kw) -> ScaleScenario:
    base = dict(
        name="tiny", n_requests=n, num_gpus=2, num_models=16, peak_rate=20.0,
        hold_fraction=0.2, prompt_range=(4, 24), response_range=(4, 16),
    )
    base.update(kw)
    return ScaleScenario(**base)


class TestScenario:
    def test_duration_matches_trapezoid_mean_rate(self):
        sc = tiny(n=6000, peak_rate=10.0, hold_fraction=0.2)
        # Mean rate = peak * (1 + hold) / 2 = 6 req/s -> 1000 s.
        assert sc.duration == pytest.approx(1000.0)

    def test_at_fraction_scales_count_and_duration_together(self):
        sc = FIG13_1M.at_fraction(0.02)
        assert sc.n_requests == 20_000
        assert sc.duration == pytest.approx(FIG13_1M.duration * 0.02)
        assert sc.peak_rate == FIG13_1M.peak_rate  # utilization preserved

    def test_at_fraction_identity(self):
        assert FIG13_1M.at_fraction(1.0) is FIG13_1M

    def test_at_fraction_validates(self):
        with pytest.raises(ValueError):
            FIG13_1M.at_fraction(0.0)
        with pytest.raises(ValueError):
            FIG13_1M.at_fraction(1.5)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            tiny(prompt_range=(0, 4))
        with pytest.raises(ValueError):
            tiny(response_range=(8, 4))
        with pytest.raises(ValueError):
            tiny(peak_rate=0.0)


class TestTrace:
    def test_exact_count_and_sorted(self):
        tr = scale_trace(tiny(), seed=0)
        assert len(tr) == 2000
        times = [r.arrival_time for r in tr]
        assert times == sorted(times)
        assert all(0.0 <= t < tiny().duration for t in times)

    def test_deterministic_and_seed_sensitive(self):
        a = scale_trace(tiny(), seed=7)
        b = scale_trace(tiny(), seed=7)
        c = scale_trace(tiny(), seed=8)
        assert a == b
        assert a != c

    def test_lengths_within_bounds(self):
        sc = tiny(prompt_range=(4, 24), response_range=(4, 16))
        tr = scale_trace(sc, seed=1)
        assert all(4 <= r.prompt_len <= 24 for r in tr)
        assert all(4 <= r.response_len <= 16 for r in tr)

    def test_request_ids_unique(self):
        tr = scale_trace(tiny(n=500), seed=0)
        assert len({r.request_id for r in tr}) == 500

    def test_zipf_popularity_is_skewed(self):
        tr = scale_trace(tiny(n=5000), seed=0)
        counts = {}
        for r in tr:
            counts[r.lora_id] = counts.get(r.lora_id, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # Zipf-1.5 over 16 models: the head model dominates the tail.
        assert ranked[0] > 5 * ranked[-1]
        assert len(counts) <= 16

    def test_ramp_shape_front_loaded_middle(self):
        sc = tiny(n=20_000, hold_fraction=0.2)
        tr = scale_trace(sc, seed=0)
        times = np.array([r.arrival_time for r in tr])
        d = sc.duration
        edge = ((times < 0.1 * d) | (times > 0.9 * d)).mean()
        middle = ((times > 0.4 * d) & (times < 0.6 * d)).mean()
        # Trapezoid: the middle fifth holds peak rate, the outer fifths ramp.
        assert middle > 2 * edge

    def test_fraction_shrinks_self_similarly(self):
        full = scale_trace(tiny(n=4000), seed=0)
        frac = scale_trace(tiny(n=4000), fraction=0.25, seed=0)
        assert len(frac) == 1000
        assert frac.duration == pytest.approx(full.duration * 0.25, rel=0.1)

    def test_fig13_1m_convenience_matches_scale_trace(self):
        a = fig13_1m_trace(fraction=0.0005, seed=3)
        b = scale_trace(FIG13_1M, fraction=0.0005, seed=3)
        assert a == b
        assert len(a) == 500

    def test_round_trips_through_json(self):
        from repro.workloads.trace import Trace

        tr = scale_trace(tiny(n=200), seed=0)
        assert Trace.from_json(tr.to_json()) == tr
