"""Property test: the calendar queue against a binary-heap oracle.

The fast path swaps the event loop's binary heap for a bucketed
calendar queue. The entire safety argument is that both disciplines
implement the identical total order ``(time, seq)`` — including the
tie-break contract that equal timestamps pop in scheduling order. This
suite drives both queues through the same interleaved push/pop/cancel
programs (dense, sparse and tied timestamps; pushes below the resolved
front bucket) and asserts identical pop sequences.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.events import CalendarQueue, EventHandle, EventLoop, HeapQueue


def _item(time, seq):
    return (time, seq, lambda now: None, EventHandle(time=time))


class TestPopOrder:
    def _drain_both(self, times, width):
        cal = CalendarQueue(bucket_width=width)
        oracle = []
        for seq, t in enumerate(times):
            item = _item(t, seq)
            cal.push(item)
            heapq.heappush(oracle, (item[0], item[1], item))
        got, want = [], []
        while oracle:
            want.append(heapq.heappop(oracle)[2][:2])
            got.append(cal.pop()[:2])
        assert cal.peek() is None and len(cal) == 0
        return got, want

    @pytest.mark.parametrize("width", [0.01, 0.25, 10.0])
    def test_dense_sparse_and_tied(self, width):
        times = [0.0, 0.0, 5.0, 0.25, 0.25, 1e6, 0.24999, 3.0, 3.0, 0.5]
        got, want = self._drain_both(times, width)
        assert got == want

    def test_ties_pop_in_scheduling_order(self):
        got, _ = self._drain_both([1.0] * 8, 0.25)
        assert got == [(1.0, s) for s in range(8)]


@settings(max_examples=200, deadline=None)
@given(
    program=st.lists(
        st.tuples(
            # op: 0 = push, 1 = pop, 2 = cancel a previously pushed item
            st.integers(min_value=0, max_value=2),
            # Times from a tiny grid force heavy ties and shared buckets.
            st.floats(min_value=0.0, max_value=4.0).map(lambda x: round(x, 1)),
            st.integers(min_value=0, max_value=63),
        ),
        min_size=1,
        max_size=64,
    ),
    width=st.sampled_from([0.05, 0.25, 1.0, 7.5]),
)
def test_interleaved_program_matches_heap_oracle(program, width):
    """Any interleaving of pushes, pops and cancels drains identically."""
    cal = CalendarQueue(bucket_width=width)
    ref = HeapQueue()
    pushed = []
    floor = 0.0  # pops raise the floor; later pushes must not precede it
    for op, t, pick in program:
        if op == 0:
            t = max(t, floor)
            a = _item(t, len(pushed))
            b = (t, len(pushed), a[2], a[3])  # share the handle for cancels
            pushed.append(a)
            cal.push(a)
            ref.push(b)
        elif op == 1:
            head_c, head_r = cal.peek(), ref.peek()
            assert (head_c is None) == (head_r is None)
            if head_c is not None:
                assert head_c[:2] == head_r[:2]
                floor = head_c[0]
                assert cal.pop()[:2] == ref.pop()[:2]
        elif pushed:
            pushed[pick % len(pushed)][3].cancel()
    while True:
        head_c, head_r = cal.peek(), ref.peek()
        assert (head_c is None) == (head_r is None)
        if head_c is None:
            break
        assert cal.pop()[:2] == ref.pop()[:2]
    assert len(cal) == 0


@settings(max_examples=50, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=9.0).map(lambda x: round(x, 2)),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    ),
    seed_width=st.sampled_from([0.1, 0.5, 2.0]),
)
def test_event_loop_pop_order_matches_between_disciplines(entries, seed_width):
    """Full EventLoop runs dispatch identically under heap and calendar."""

    def drive(loop):
        order = []
        handles = []
        for i, (t, cancel) in enumerate(entries):
            h = loop.schedule(t, lambda now, i=i: order.append((now, i)))
            if cancel:
                handles.append(h)
        for h in handles[::2]:
            h.cancel()
        loop.run()
        return order, loop.processed

    fast = EventLoop(fast_path=True, bucket_width=seed_width)
    ref = EventLoop(fast_path=False)
    assert drive(fast) == drive(ref)
