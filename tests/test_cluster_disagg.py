"""Tests for disaggregated prefill/decode serving (docs/disagg.md).

Covers the two-stage lifecycle (prefill pool -> paged KV handoff ->
decode pool), the colocated-fallback backpressure path, and the failure
matrix: cancel mid-transfer, a lost handoff (KV_TRANSFER_FAIL), and a
decode-pool crash. The mid-transfer cases use an absurdly slow
interconnect so the handoff window is seconds wide and a scheduled
event lands inside it deterministically.
"""

import pytest

from repro.cluster.disagg import INTERCONNECTS, DisaggConfig, DisaggSimulator
from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.frontend import Frontend
from repro.cluster.scheduler import SchedulerConfig
from repro.hw.interconnect import NVLINK_A100, InterconnectSpec
from repro.models.config import LLAMA2_7B
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

CARRIER_PIGEON = InterconnectSpec(
    name="carrier pigeon", bus_bandwidth=1e9, latency=5.0
)
"""Five seconds of wire latency: any handoff stays in flight long enough
for a scheduled cancel/fault to hit it."""


def make_engine(gpu_id, max_batch=8, step_overhead=0.0):
    return GpuEngine(
        gpu_id,
        SimulatedBackend(LLAMA2_7B, step_overhead=step_overhead),
        EngineConfig(max_batch_size=max_batch),
    )


def make_sim(
    num_prefill=2,
    num_decode=2,
    config=None,
    fault_injector=None,
    tracer=None,
    **engine_kwargs,
):
    return DisaggSimulator(
        [make_engine(f"p{i}", **engine_kwargs) for i in range(num_prefill)],
        [make_engine(f"d{i}", **engine_kwargs) for i in range(num_decode)],
        config=config,
        fault_injector=fault_injector,
        tracer=tracer,
    )


def finish_gpus(tracer):
    """request id -> the GPU whose step delivered the final token."""
    return {
        e.request_id: e.gpu_id for e in tracer.by_kind(EventKind.FINISH)
    }


def make_trace(seed=0, n=40, rate=8.0, duration=4.0):
    return generate_trace(
        n, "skewed", seed=seed,
        lengths=ShareGptLengths(max_prompt_len=48, max_response_len=8),
        arrivals=PoissonArrivals(rate=constant_rate(rate), duration=duration),
    )


class TestConstruction:
    def test_pools_must_be_nonempty(self):
        with pytest.raises(ValueError, match="prefill"):
            DisaggSimulator([], [make_engine("d0")])
        with pytest.raises(ValueError, match="decode"):
            DisaggSimulator([make_engine("p0")], [])

    def test_roles_assigned(self):
        sim = make_sim(num_prefill=1, num_decode=1)
        assert sim.scheduler.engines["p0"].role == "prefill"
        assert sim.scheduler.engines["d0"].role == "decode"

    def test_consolidation_off_by_default_but_honored_when_requested(self):
        # Role-aware consolidation (the scheduler's role-equality rule)
        # made opting in safe; the default stays off.
        sim = DisaggSimulator(
            [make_engine("p0")], [make_engine("d0")],
            scheduler_config=SchedulerConfig(consolidation=True),
        )
        assert sim.scheduler.config.consolidation is True
        assert DisaggSimulator(
            [make_engine("p1")], [make_engine("d1")]
        ).scheduler.config.consolidation is False

    def test_decode_queue_limit_validated(self):
        with pytest.raises(ValueError, match="decode_queue_limit"):
            DisaggConfig(decode_queue_limit=0)

    def test_named_interconnects(self):
        assert INTERCONNECTS["nvlink"] is NVLINK_A100
        assert (
            INTERCONNECTS["pcie"].transfer_time(1e9)
            > NVLINK_A100.transfer_time(1e9)
        )


class TestRoleAwareConsolidation:
    def _request(self, rid):
        from repro.runtime.request import Request
        from repro.workloads.trace import RequestSpec

        return Request(spec=RequestSpec(rid, "lora-0", 0.0, 16, 8))

    def test_migration_target_stays_inside_the_role_pool(self):
        sim = make_sim(num_prefill=2, num_decode=2, max_batch=8)
        sched = sim.scheduler
        mover = self._request("mover")
        sched.engines["p0"].add_request(mover, 0.0)
        # The busiest engine in the cluster is a *decode* engine; the
        # role-equality rule must never pick it for a prefill request.
        for i in range(3):
            sched.engines["d0"].add_request(self._request(f"d{i}"), 0.0)
        assert sched._migration_target("p0", mover) is None
        # A busier engine of the *same* role is a legal target.
        for i in range(2):
            sched.engines["p1"].add_request(self._request(f"p{i}"), 0.0)
        assert sched._migration_target("p0", mover) == "p1"

    def test_consolidation_run_migrates_within_roles_only(self):
        tracer = Tracer()
        sim = make_sim(
            num_prefill=2, num_decode=2, max_batch=4, step_overhead=0.05,
            config=DisaggConfig(decode_queue_limit=2), tracer=tracer,
        )
        sim.scheduler.config = SchedulerConfig(
            consolidation=True, migration_interval=0.2
        )
        result = sim.run(make_trace(rate=12.0))
        roles = {gid: e.role for gid, e in sim.scheduler.engines.items()}
        migrations = tracer.by_kind(EventKind.MIGRATE)
        for e in migrations:
            assert roles[e.gpu_id] == roles[e.attrs["target"]], (
                f"{e.request_id} migrated across the role split: "
                f"{e.gpu_id} -> {e.attrs['target']}"
            )
        for req in result.requests:
            assert req.state is RequestState.FINISHED

    def test_migration_hook_clears_colocation(self):
        sim = make_sim(num_prefill=1, num_decode=1)
        assert sim.scheduler.migration_hook == sim._on_migrate
        sim._colocated.add("req-x")
        sim._on_migrate(self._request("req-x"), "p0", "p1")
        assert "req-x" not in sim._colocated


class TestTwoStageLifecycle:
    def test_every_request_prefills_then_decodes_across_the_split(self):
        tracer = Tracer()
        sim = make_sim(tracer=tracer)
        result = sim.run(make_trace())
        assert result.requests
        for req in result.requests:
            assert req.state is RequestState.FINISHED
            assert req.num_generated == req.spec.response_len
        # No backpressure at this load: every request was handed off and
        # finished on a decode GPU.
        assert sim.metrics.colocated_fallback_count() == 0
        assert sim.metrics.kv_transfer_count() >= len(result.requests)
        for rid, gpu in finish_gpus(tracer).items():
            assert gpu in ("d0", "d1"), (
                f"{rid} finished on {gpu}, not in the decode pool"
            )
        # All prefill compute stayed in the prefill pool.
        for e in tracer.by_kind(EventKind.PREFILL):
            assert e.gpu_id in ("p0", "p1")

    def test_ttft_includes_the_handoff(self):
        tracer = Tracer()
        sim = make_sim(tracer=tracer)
        result = sim.run(make_trace(n=20, rate=4.0))
        done_times = {}
        for e in tracer.by_kind(EventKind.KV_TRANSFER_DONE):
            done_times.setdefault(e.request_id, e.time)
        assert done_times
        for req in result.requests:
            if req.num_migrations or req.request_id not in done_times:
                continue
            # The first token travels with the pages: it is delivered by
            # the decode GPU, after the transfer completed.
            assert req.first_token_time >= done_times[req.request_id]

    def test_transfer_metrics_recorded(self):
        sim = make_sim()
        sim.run(make_trace(n=20, rate=4.0))
        assert sim.metrics.kv_transfer_count() > 0
        assert sim.metrics.kv_transfer_seconds() > 0.0
        assert sim.metrics.kv_transfer_failure_count() == 0
        assert sim.transfers_in_flight == 0
        assert sim.decode_queue_depth == 0


class TestColocatedFallback:
    def test_saturation_falls_back_to_prefill_gpu(self):
        tracer = Tracer()
        sim = make_sim(
            config=DisaggConfig(decode_queue_limit=1),
            step_overhead=0.05, max_batch=4, tracer=tracer,
        )
        result = sim.run(make_trace(rate=16.0))
        assert sim.metrics.colocated_fallback_count() > 0
        for req in result.requests:
            assert req.state is RequestState.FINISHED
        finished_on_prefill = [
            rid for rid, gpu in finish_gpus(tracer).items()
            if gpu in ("p0", "p1")
        ]
        assert finished_on_prefill, "no request decoded colocated"


class TestCancelMidTransfer:
    def test_cancel_disarms_the_inflight_handoff(self):
        sim = make_sim(
            num_prefill=1, num_decode=1,
            config=DisaggConfig(interconnect=CARRIER_PIGEON),
        )
        fe = Frontend(sim)
        handle = fe.submit("lora-a", prompt_len=16, response_len=8,
                           at_time=0.0)
        # Prefill finishes well before t=2; the 5 s handoff is in flight.
        def cancel(now):
            assert sim.transfers_in_flight == 1
            fe.cancel(handle.request_id)
            assert sim.transfers_in_flight == 0

        sim.loop.schedule(2.0, cancel)
        end = fe.run()
        assert handle.state is RequestState.CANCELLED
        assert end < 5.0, "loop waited for a cancelled transfer"
        assert sim.metrics.kv_transfer_count() == 0


class TestTransferFailure:
    def test_lost_handoff_falls_back_to_reprefill(self):
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.KV_TRANSFER_FAIL, time=2.0)], seed=0
        )
        tracer = Tracer()
        sim = make_sim(
            num_prefill=1, num_decode=1,
            config=DisaggConfig(interconnect=CARRIER_PIGEON),
            fault_injector=injector, tracer=tracer,
        )
        fe = Frontend(sim)
        handle = fe.submit("lora-a", prompt_len=16, response_len=8,
                           at_time=0.0)
        # Frontend.run drives the loop directly (no sim.run), so arm the
        # fault plan by hand.
        injector.arm(sim.loop, sim._apply_fault)
        fe.run()
        assert injector.injected[0].applied
        assert sim.metrics.kv_transfer_failure_count() == 1
        assert handle.state is RequestState.FINISHED
        assert len(handle.tokens) == 8
        # The request paid the §5.3 price (re-prefill), then was handed
        # off again and decoded on the decode GPU.
        req = handle.request
        assert req.num_migrations == 1
        assert finish_gpus(tracer)[req.request_id] == "d0"
        assert sim.metrics.kv_transfer_count() == 1

    def test_noop_without_inflight_transfer(self):
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.KV_TRANSFER_FAIL, time=3.0)], seed=0
        )
        sim = make_sim(num_prefill=1, num_decode=1, fault_injector=injector)
        result = sim.run(make_trace(n=4, rate=8.0, duration=0.5))
        assert not injector.injected[0].applied
        assert sim.metrics.kv_transfer_failure_count() == 0
        for req in result.requests:
            assert req.state is RequestState.FINISHED


class TestDecodePoolCrash:
    def test_decode_crash_reroutes_and_colocates(self):
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.GPU_CRASH, time=1.0, gpu_id="d0")],
            seed=0,
        )
        tracer = Tracer()
        sim = make_sim(
            num_prefill=2, num_decode=1,
            fault_injector=injector, step_overhead=0.02, tracer=tracer,
        )
        result = sim.run(make_trace(rate=12.0, duration=3.0))
        assert injector.injected[0].applied
        # The whole decode pool died: every request still finishes, now
        # decoding colocated on the prefill GPUs.
        for req in result.requests:
            assert req.state is RequestState.FINISHED, (
                f"{req.request_id} stranded in {req.state}"
            )
            assert req.num_generated == req.spec.response_len
        gpus = finish_gpus(tracer)
        late = [r for r in result.requests if r.spec.arrival_time > 1.0]
        assert late
        for req in late:
            assert gpus[req.request_id] in ("p0", "p1")

    def test_partial_decode_crash_keeps_disaggregating(self):
        injector = FaultInjector(
            [FaultSpec(kind=FaultKind.GPU_CRASH, time=1.0, gpu_id="d0")],
            seed=0,
        )
        tracer = Tracer()
        sim = make_sim(
            num_prefill=2, num_decode=2,
            fault_injector=injector, step_overhead=0.02, tracer=tracer,
        )
        result = sim.run(make_trace(rate=12.0, duration=3.0))
        assert injector.injected[0].applied
        for req in result.requests:
            assert req.state is RequestState.FINISHED
        gpus = finish_gpus(tracer)
        survivors = [
            r for r in result.requests
            if r.spec.arrival_time > 1.0 and gpus[r.request_id] == "d1"
        ]
        assert survivors, "the surviving decode GPU took no handoffs"


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_same_seed_same_trace(self, seed):
        def run():
            tracer = Tracer()
            sim = make_sim(
                config=DisaggConfig(decode_queue_limit=2),
                tracer=tracer, step_overhead=0.05, max_batch=4,
            )
            sim.run(make_trace(seed=seed, rate=12.0))
            return tracer.dumps_jsonl()

        assert run() == run()
