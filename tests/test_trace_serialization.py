"""Tests for trace JSON round-tripping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.trace import Trace, generate_trace, open_loop_trace


class TestTraceJson:
    def test_roundtrip_closed_loop(self):
        trace = generate_trace(30, "skewed", seed=0)
        assert Trace.from_json(trace.to_json()).requests == trace.requests

    def test_roundtrip_open_loop(self):
        trace = open_loop_trace(rate=3.0, duration=10.0, seed=1)
        restored = Trace.from_json(trace.to_json())
        assert restored.requests == trace.requests
        assert restored.duration == trace.duration

    def test_save_load(self, tmp_path):
        trace = generate_trace(10, "uniform", seed=2)
        path = tmp_path / "trace.json"
        trace.save(path)
        assert Trace.load(path).requests == trace.requests

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="version-1"):
            Trace.from_json('{"schema": 2, "requests": []}')
        with pytest.raises(ValueError):
            Trace.from_json("[1, 2, 3]")

    def test_empty_trace_roundtrips(self):
        assert Trace.from_json(Trace().to_json()).requests == ()

    @given(st.integers(1, 60), st.sampled_from(["distinct", "uniform", "skewed", "identical"]),
           st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, n, dist, seed):
        trace = generate_trace(n, dist, seed=seed)
        assert Trace.from_json(trace.to_json()).requests == trace.requests
