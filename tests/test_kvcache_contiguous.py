"""Tests for the inseparable HF-style KvCache baseline (Fig 6 semantics)."""

import numpy as np
import pytest

from repro.kvcache.contiguous import ContiguousKvCache, wasted_decode_steps


class TestContiguousKvCache:
    def make(self, batch=2):
        return ContiguousKvCache(
            batch_ids=[f"r{i}" for i in range(batch)],
            num_layers=2,
            num_kv_heads=3,
            head_dim=4,
        )

    def test_append_grows_seq_dim(self):
        c = self.make()
        assert c.seq_len == 0
        k = np.ones((2, 2, 3, 4))
        c.append_step(k, k)
        c.append_step(k * 2, k * 2)
        assert c.seq_len == 2
        assert c.data.shape == (2, 2, 2, 3, 2, 4)

    def test_append_copies_whole_cache(self):
        # The paper's §5.4 complaint: each step rewrites the entire cache.
        c = self.make()
        k = np.ones((2, 2, 3, 4), dtype=np.float32)
        c.append_step(k, k)
        first = c.copied_bytes
        c.append_step(k, k)
        second = c.copied_bytes - first
        assert second > first  # cost grows with the cache, not the new token

    def test_get_per_request_history(self):
        c = self.make()
        k = np.zeros((2, 2, 3, 4), dtype=np.float32)
        k[0, 1] = 5.0
        c.append_step(k, k)
        got_k, _ = c.get(layer=0, batch_index=1)
        np.testing.assert_array_equal(got_k[:, 0, :], np.full((3, 4), 5.0))

    def test_shape_validation(self):
        c = self.make()
        with pytest.raises(ValueError):
            c.append_step(np.zeros((1, 2, 3, 4)), np.zeros((2, 2, 3, 4)))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ContiguousKvCache(["a", "a"], 1, 1, 1)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            ContiguousKvCache([], 1, 1, 1)


class TestWastedDecodeSteps:
    def test_fig6_example(self):
        # Four requests batched together; shorter ones idle until the longest ends.
        assert wasted_decode_steps([10, 4, 7, 2]) == (0 + 6 + 3 + 8)

    def test_equal_lengths_no_waste(self):
        assert wasted_decode_steps([5, 5, 5]) == 0

    def test_single_request_no_waste(self):
        assert wasted_decode_steps([100]) == 0

    def test_empty(self):
        assert wasted_decode_steps([]) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wasted_decode_steps([3, -1])
