"""Tests for the unified KvCache + adapter memory pool, including the
property test of the shared-budget invariant (DESIGN.md §7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapters.pool import UnifiedMemoryPool
from repro.adapters.registry import AdapterRegistry, Tier

CAPACITY = 64.0
PAGE_SIZE = 4
BYTES_PER_TOKEN = 1

ADAPTERS = {"r8": (8, 8.0), "r16": (16, 16.0), "r32": (32, 24.0)}
"""Mixed-rank adapters: lora_id -> (rank, nbytes)."""


def make_pool(capacity=CAPACITY) -> UnifiedMemoryPool:
    reg = AdapterRegistry()
    for lid, (rank, nbytes) in ADAPTERS.items():
        reg.register(lid, rank=rank, nbytes=nbytes)
    return UnifiedMemoryPool(
        capacity_bytes=capacity,
        page_size=PAGE_SIZE,
        bytes_per_token=BYTES_PER_TOKEN,
        registry=reg,
    )


class TestSharedAccounting:
    def test_totals_split(self):
        pool = make_pool()
        pool.kv_admit("s0", 8)  # 2 pages = 8 bytes
        pool.request_load("r16", 16.0, now=0.0)
        assert pool.kv_used_bytes() == 8.0
        assert pool.adapter_used_bytes() == 16.0
        assert pool.total_used_bytes() == 24.0
        assert pool.free_bytes() == CAPACITY - 24.0
        pool.check_invariant()

    def test_kv_admission_respects_pinned_adapters(self):
        pool = make_pool(capacity=32.0)
        pool.request_load("r32", 24.0, now=0.0)
        pool.acquire("r32", now=0.0)
        assert not pool.kv_can_admit(12)  # 3 pages won't fit next to 24 pinned
        with pytest.raises(MemoryError):
            pool.kv_admit("s0", 12)

    def test_kv_admission_reclaims_unpinned_adapters(self):
        pool = make_pool(capacity=32.0)
        pool.request_load("r32", 24.0, now=0.0)
        pool.advance(100.0)  # transfer settled; adapter unpinned
        assert pool.kv_can_admit(12)
        pool.kv_admit("s0", 12)  # demotes the adapter to HOST
        assert not pool.is_resident("r32")
        assert pool.adapters.registry.tier("r32") is Tier.HOST
        pool.check_invariant()

    def test_kv_append_page_boundary_reclaims(self):
        pool = make_pool(capacity=32.0)
        pool.kv_admit("s0", 4)  # exactly one full page
        pool.request_load("r16", 16.0, now=0.0)
        pool.advance(100.0)
        assert pool.kv_can_append("s0")  # next token needs a page: reclaimable
        pool.kv_append("s0")
        pool.check_invariant()

    def test_kv_free_tokens_counts_evictable_adapters(self):
        pool = make_pool(capacity=32.0)
        pool.request_load("r16", 16.0, now=0.0)
        pool.advance(100.0)
        assert pool.kv_free_tokens() == 32  # unpinned adapter counts as free
        pool.acquire("r16", now=100.0)
        assert pool.kv_free_tokens() == 16  # pinned bytes are off-limits

    def test_adapter_load_respects_kv_usage(self):
        pool = make_pool(capacity=32.0)
        pool.kv_admit("s0", 20)  # 5 pages = 20 bytes
        assert not pool.can_admit_adapter("r32", 24.0)
        with pytest.raises(MemoryError):
            pool.request_load("r32", 24.0, now=0.0)
        pool.kv_release("s0")
        pool.request_load("r32", 24.0, now=1.0)
        pool.check_invariant()


# -- property test -------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("load"), st.sampled_from(sorted(ADAPTERS))),
        st.tuples(st.just("acquire"), st.sampled_from(sorted(ADAPTERS))),
        st.tuples(st.just("release"), st.sampled_from(sorted(ADAPTERS))),
        st.tuples(st.just("prefetch"), st.sampled_from(sorted(ADAPTERS))),
        st.tuples(st.just("kv_admit"), st.integers(0, 3), st.integers(1, 24)),
        st.tuples(st.just("kv_append"), st.integers(0, 3)),
        st.tuples(st.just("kv_release"), st.integers(0, 3)),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=_ops)
def test_gpu_bytes_never_exceed_unified_budget(ops):
    """Random load/evict/prefetch/KV sequences at mixed ranks never push
    KvCache + adapter bytes past the shared budget."""
    pool = make_pool()
    held: dict[str, int] = {lid: 0 for lid in ADAPTERS}
    now = 0.0
    for op in ops:
        now += 0.5
        pool.advance(now)
        kind = op[0]
        if kind == "load":
            lid = op[1]
            try:
                pool.request_load(lid, ADAPTERS[lid][1], now)
            except MemoryError:
                pass  # budget full of pinned state: correct refusal
        elif kind == "acquire":
            lid = op[1]
            if pool.is_resident(lid):
                pool.acquire(lid, now)
                held[lid] += 1
        elif kind == "release":
            lid = op[1]
            if held[lid] > 0:
                pool.release(lid)
                held[lid] -= 1
        elif kind == "prefetch":
            pool.prefetch(op[1], now)
        elif kind == "kv_admit":
            seq, tokens = f"s{op[1]}", op[2]
            if seq not in pool.kv and pool.kv_can_admit(tokens):
                pool.kv_admit(seq, tokens)
        elif kind == "kv_append":
            seq = f"s{op[1]}"
            if seq in pool.kv and pool.kv_can_append(seq):
                pool.kv_append(seq)
        elif kind == "kv_release":
            pool.kv_release(f"s{op[1]}")
        pool.check_invariant()
        assert pool.adapter_used_bytes() + pool.kv_used_bytes() <= CAPACITY
