"""End-to-end asyncio serving tests: the acceptance smoke for PR 6.

Every test here runs the full stack — asyncio TCP server, newline-framed
protocol, backend bridge, admission control — via :mod:`repro.serve.harness`
builders, driven by the load-generation client. ``REPRO_SERVE_SEED`` (CI
runs a small seed matrix) varies the request mix; assertions are
invariants, not golden values, because asyncio interleaving is not
reproducible even when the mix is.

The headline guarantees exercised:

* >= 100 concurrent streaming clients against the time-warped simulator;
* a client disconnect mid-stream reaches the engine as a CANCEL trace
  event with ``reason="disconnect"`` (both polite CancelOp and rude
  socket-abort variants);
* per-tenant rate limiting sheds the over-limit tenant without starving
  compliant ones;
* a slow reader backpressures only its own connection;
* the functional backend streams real, deterministic token ids.

No pytest-asyncio in the image: each test is a sync function running its
coroutine through ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.obs.tracer import EventKind
from repro.serve.client import LoadSpec, ServeClient, expand_plans
from repro.serve.harness import (
    build_functional_stack,
    build_sim_stack,
    run_load,
)
from repro.serve.limits import TenantPolicy
from repro.serve.protocol import CancelOp, ErrorFrame, GenerateOp

SEED = int(os.environ.get("REPRO_SERVE_SEED", "0"))


def run(coro):
    return asyncio.run(coro)


class TestConcurrentLoad:
    def test_hundred_concurrent_streaming_clients(self):
        """The acceptance floor: 100 clients stream concurrently against
        the simulator and every admitted stream runs to completion with
        exactly its requested number of tokens."""
        stack = build_sim_stack(warp=None)
        spec = LoadSpec(num_clients=100, seed=SEED)
        summary, results = run(run_load(stack, spec))
        assert summary["clients"] == 100
        assert summary["by_status"] == {"finished": 100}
        for plan, result in zip(expand_plans(spec), results):
            assert result.num_tokens == plan.op.response_len
        reg = stack.metrics.registry
        assert reg.get("serve_requests_finished_total").total() == 100
        assert reg.get("serve_tokens_streamed_total").total() == summary["tokens"]
        assert reg.get("serve_active_streams").total() == 0
        assert reg.get("serve_active_connections").total() == 0

    def test_token_frames_are_ordered_and_indexed(self):
        stack = build_sim_stack(warp=None)
        spec = LoadSpec(num_clients=16, seed=SEED)
        _, results = run(run_load(stack, spec))
        for result in results:
            assert result.status == "finished"
            assert result.num_tokens == len(result.tokens)


class TestCancellationStorm:
    def test_disconnect_mid_stream_reaches_engine_as_cancel(self):
        """A storm of mid-stream cancels (polite CancelOp) and rude socket
        aborts, over a time-warped simulator slow enough that responses
        are genuinely in flight when the disconnects land. Every cancel
        the client observed must appear at the engine boundary as a CANCEL
        trace event carrying ``reason="disconnect"``."""
        stack = build_sim_stack(warp=8.0, quantum=0.05)
        spec = LoadSpec(
            num_clients=100,
            response_len=(24, 48),
            cancel_fraction=0.15,
            abort_fraction=0.10,
            cancel_after=2,
            seed=SEED,
        )
        summary, results = run(run_load(stack, spec))
        by_status = summary["by_status"]
        assert by_status.get("finished", 0) > 0
        storm = by_status.get("cancelled", 0) + by_status.get("aborted", 0)
        assert storm > 0, f"no disconnects landed mid-stream: {by_status}"

        cancel_events = [
            e for e in stack.tracer.by_kind(EventKind.CANCEL)
            if e.attrs.get("reason") == "disconnect"
        ]
        cancelled_ids = {
            r.request_id for r in results if r.status in ("cancelled", "aborted")
        }
        traced_ids = {e.request_id for e in cancel_events}
        # Every client-observed cancellation that was still in flight shows
        # up at the engine; the engine never invents disconnects.
        assert traced_ids, "no CANCEL(reason=disconnect) reached the engine"
        assert traced_ids <= cancelled_ids
        # Exactly-once at the engine boundary.
        assert len(cancel_events) == len(traced_ids)

        reg = stack.metrics.registry
        assert reg.get("serve_client_cancels_total").total() == storm
        assert reg.get("serve_active_streams").total() == 0

    def test_cancelled_stream_stops_promptly(self):
        """After a CancelOp the client sees its EndFrame without having to
        drain the full response."""
        stack = build_sim_stack(warp=8.0)
        spec = LoadSpec(
            num_clients=12, response_len=(32, 48),
            cancel_fraction=1.0, cancel_after=2, seed=SEED,
        )
        _, results = run(run_load(stack, spec))
        for plan, result in zip(expand_plans(spec), results):
            if result.status == "cancelled":
                assert result.num_tokens < plan.op.response_len


class TestRateLimiting:
    def test_over_limit_tenant_sheds_without_starving_compliant(self):
        """One tenant gets a tight policy; the default stays permissive.
        The tight tenant is shed past its burst, the compliant tenants all
        finish, and sheds never consume engine capacity."""
        tight = TenantPolicy(rate=1.0, burst=3.0, max_inflight=4)
        stack = build_sim_stack(
            warp=None, tenant_policies={"greedy": tight},
        )
        spec = LoadSpec(
            num_clients=90,
            tenants=("greedy", "good-a", "good-b"),
            response_len=(4, 8),
            seed=SEED,
        )
        summary, results = run(run_load(stack, spec))
        shed = [r for r in results if r.status == "shed"]
        assert shed, "the greedy tenant was never shed"
        assert {r.tenant for r in shed} == {"greedy"}
        for r in results:
            if r.tenant != "greedy":
                assert r.status == "finished", (
                    f"compliant tenant starved: {r.tenant} -> {r.status}"
                )
        # Some greedy requests (the burst) do get through.
        assert any(
            r.tenant == "greedy" and r.status == "finished" for r in results
        )
        reg = stack.metrics.registry
        assert reg.get("serve_requests_shed_total").value(
            tenant="greedy", reason="rate_limited"
        ) == len(shed)
        # A shed connection never reached the scheduler: finished count
        # equals admitted count.
        assert (
            reg.get("serve_requests_finished_total").total()
            == reg.get("serve_requests_admitted_total").total()
        )


class TestSlowReaders:
    def test_slow_reader_does_not_stall_other_connections(self):
        """A fifth of the clients lag between reads (event-loop yields,
        not wall-clock sleeps — this test must not be load-sensitive).
        Everyone still finishes with a full response — the backend buffers
        into the slow streams' queues instead of blocking on their
        sockets."""
        stack = build_sim_stack(warp=None)
        spec = LoadSpec(
            num_clients=60, response_len=(4, 16),
            slow_fraction=0.2, slow_yields=40, seed=SEED,
        )
        summary, results = run(run_load(stack, spec))
        assert summary["by_status"] == {"finished": 60}
        for plan, result in zip(expand_plans(spec), results):
            assert result.num_tokens == plan.op.response_len


class TestStaggeredStarts:
    def test_wave_ramp_is_event_driven_and_completes(self):
        """Client starts chained in waves of 8: wave k+1 connects only
        after wave k has. The ramp shape comes from causality, not
        timers, so the test is immune to machine load; every admitted
        stream still finishes with its full response."""
        stack = build_sim_stack(warp=None)
        spec = LoadSpec(
            num_clients=48, response_len=(4, 12), stagger=8, seed=SEED,
        )
        summary, results = run(run_load(stack, spec))
        assert summary["by_status"] == {"finished": 48}
        for plan, result in zip(expand_plans(spec), results):
            assert result.num_tokens == plan.op.response_len
        reg = stack.metrics.registry
        assert reg.get("serve_active_connections").total() == 0


class TestFunctionalBackend:
    def test_streams_real_deterministic_tokens(self):
        """The functional NumPy backend serves real argmax token ids:
        identical prompts through the same adapter yield identical
        streams regardless of asyncio interleaving."""
        async def scenario():
            stack = build_functional_stack(seed=SEED)
            await stack.server.start()
            try:
                prompt = (1, 2, 3, 4, 5, 6, 7, 8)

                async def one(rid: str, lora: str):
                    client = ServeClient("127.0.0.1", stack.server.port)
                    await client.connect()
                    try:
                        return await client.generate(
                            GenerateOp(
                                request_id=rid, tenant="t", lora_id=lora,
                                prompt_len=len(prompt), response_len=6,
                                prompt_tokens=prompt,
                            )
                        )
                    finally:
                        await client.close()

                return await asyncio.gather(
                    one("fa", "lora-0"), one("fb", "lora-0"),
                    one("fc", "lora-1"),
                )
            finally:
                await stack.server.stop()

        a, b, c = run(scenario())
        for r in (a, b, c):
            assert r.status == "finished"
            assert len(r.tokens) == 6
            assert all(0 <= t < 128 for t in r.tokens)
        # Same prompt + same adapter => same tokens, independent of timing.
        assert a.tokens == b.tokens

    def test_functional_load_with_cancels(self):
        stack = build_functional_stack(seed=SEED)
        spec = LoadSpec(
            num_clients=24, prompt_len=(4, 12), response_len=(8, 16),
            cancel_fraction=0.25, cancel_after=2, seed=SEED,
        )
        summary, results = run(run_load(stack, spec))
        assert summary["clients"] == 24
        assert set(summary["by_status"]) <= {"finished", "cancelled"}
        assert summary["by_status"].get("finished", 0) > 0
        reg = stack.metrics.registry
        assert reg.get("serve_active_streams").total() == 0


class TestServerProtocolErrors:
    def test_malformed_line_and_unknown_cancel(self):
        async def scenario():
            stack = build_sim_stack(warp=None)
            await stack.server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", stack.server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                from repro.serve.protocol import decode_frame, encode_frame
                bad = decode_frame(await reader.readline())
                writer.write(encode_frame(CancelOp(request_id="ghost")))
                await writer.drain()
                missing = decode_frame(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return bad, missing
            finally:
                await stack.server.stop()

        bad, missing = run(scenario())
        assert isinstance(bad, ErrorFrame) and bad.code == 400
        assert isinstance(missing, ErrorFrame) and missing.code == 404
