"""The million-request scale-out run (``scale`` marker — CI scale job only).

Tier-1 excludes this module via the default ``-m "not scale"`` addopts;
the CI ``scale`` job opts back in with ``-m scale``. The run asserts the
things that only show up at scale: terminal-state accounting over 10^6
requests, monotonic event-loop time through millions of calendar-queue
pops, and a wall budget extrapolated from the smoke row's throughput
floor.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.bench.fig13_cluster import build_cluster
from repro.bench.perf_gate import DEFAULT_THRESHOLDS
from repro.workloads.scale import FIG13_1M, scale_trace

pytestmark = pytest.mark.scale


def test_million_request_run_within_budget():
    t0 = perf_counter()
    trace = scale_trace(FIG13_1M, seed=0)
    gen_wall = perf_counter() - t0
    assert len(trace) == FIG13_1M.n_requests == 1_000_000
    sim = build_cluster(
        FIG13_1M.num_gpus, max_batch_size=FIG13_1M.max_batch_size, fast_path=True
    )
    t0 = perf_counter()
    result = sim.run(trace)
    wall = perf_counter() - t0

    # Every request reached a terminal state; nothing was silently dropped.
    assert result.finished_requests + result.failed_requests == 1_000_000
    assert result.tokens_generated >= result.finished_requests * FIG13_1M.response_range[0]
    assert result.duration >= trace.duration

    # The event-throughput floor the smoke row enforces must hold at full
    # scale too — the calendar queue exists so the queue does not become
    # superlinear in pending-event count.
    floor = DEFAULT_THRESHOLDS["budgets"]["fig13_1m"]["min_events_per_s"]
    events_per_s = result.events_processed / wall
    assert events_per_s >= floor, (
        f"{events_per_s:.0f} events/s below the {floor:.0f} floor "
        f"({result.events_processed} events in {wall:.0f}s)"
    )
    # Trace generation must stay a small fraction of simulation wall.
    assert gen_wall < 0.25 * wall
