"""Chaos suite: fault injection against the cluster runtime.

Run under a seed sweep in CI (``REPRO_FAULTS_SEED`` selects the base
seed): identical seeds must produce bit-identical simulations, and under
every seed a mid-trace GPU crash must leave no request behind — every
non-shed request reaches FINISHED with its full token count, with at
least one recorded re-placement migration.
"""

import os

import pytest

from repro.cluster.faults import FaultInjector, FaultKind, FaultSpec
from repro.cluster.frontend import Frontend
from repro.cluster.simulator import ClusterSimulator
from repro.hw.pcie import PcieSpec
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.loader import LoraLoader
from repro.runtime.request import RequestState
from repro.workloads.arrivals import PoissonArrivals, constant_rate
from repro.workloads.lengths import ShareGptLengths
from repro.workloads.trace import generate_trace

BASE_SEED = int(os.environ.get("REPRO_FAULTS_SEED", "0"))
SEEDS = [BASE_SEED, BASE_SEED + 1, BASE_SEED + 2]


def make_engines(n, max_batch=8, pcie=None):
    return [
        GpuEngine(
            f"gpu{i:02d}",
            SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
            EngineConfig(max_batch_size=max_batch),
            loader=LoraLoader(pcie=pcie) if pcie is not None else None,
        )
        for i in range(n)
    ]


def chaos_trace(seed, n=150, rate=6.0, duration=30.0):
    # Responses up to 128 tokens at ~6 req/s keep a 4-GPU pool loaded for
    # the whole horizon, so a mid-trace fault always finds work in flight.
    lengths = ShareGptLengths(max_prompt_len=64, max_response_len=128)
    arrivals = PoissonArrivals(rate=constant_rate(rate), duration=duration)
    return generate_trace(n, "skewed", seed=seed, lengths=lengths,
                          arrivals=arrivals)


def run_with_injector(injector, seed, num_gpus=4):
    sim = ClusterSimulator(make_engines(num_gpus), fault_injector=injector)
    return sim.run(chaos_trace(seed))


# ---------------------------------------------------------------------------
# The acceptance chaos test: crash a GPU mid-trace on a 4-GPU cluster
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestCrashRecovery:
    def test_all_survivors_finish_with_full_token_count(self, seed):
        injector = FaultInjector.crash_at(10.0, seed=seed)
        result = run_with_injector(injector, seed)
        assert result.metrics.fault_count() == 1
        assert injector.injected[0].applied
        shed = [r for r in result.requests if r.state is RequestState.FAILED]
        assert not shed, "a 4-GPU pool losing one GPU must not shed"
        for req in result.requests:
            assert req.state is RequestState.FINISHED, (
                f"{req.request_id} stranded in {req.state}"
            )
            assert req.num_generated == req.spec.response_len, (
                f"{req.request_id} finished short: "
                f"{req.num_generated}/{req.spec.response_len}"
            )

    def test_replacement_migrations_recorded(self, seed):
        injector = FaultInjector.crash_at(10.0, seed=seed)
        result = run_with_injector(injector, seed)
        assert result.metrics.replacement_count() >= 1
        migrated = [r for r in result.requests if r.num_migrations > 0]
        assert migrated, "no request carries a re-placement migration mark"

    def test_recovery_latency_recorded(self, seed):
        injector = FaultInjector.crash_at(10.0, seed=seed)
        result = run_with_injector(injector, seed)
        assert len(result.metrics.recoveries) == 1
        assert result.metrics.mean_recovery_latency() >= 0.0

    def test_deterministic_under_fixed_seed(self, seed):
        a = run_with_injector(FaultInjector.crash_at(10.0, seed=seed), seed)
        b = run_with_injector(FaultInjector.crash_at(10.0, seed=seed), seed)
        assert a.duration == b.duration
        assert a.tokens_generated == b.tokens_generated
        assert a.events_processed == b.events_processed
        assert [r.state for r in a.requests] == [r.state for r in b.requests]


# ---------------------------------------------------------------------------
# Random multi-fault plans
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_random_plan_all_kinds_no_stranded_requests(seed):
    injector = FaultInjector.random_plan(seed=seed, duration=30.0, num_faults=6)
    result = run_with_injector(injector, seed)
    for req in result.requests:
        assert req.state in (RequestState.FINISHED, RequestState.FAILED), (
            f"{req.request_id} stranded in {req.state}"
        )
        if req.state is RequestState.FINISHED:
            assert req.num_generated == req.spec.response_len
    # Shed implies the pool went empty — with 4 GPUs and at most 6 faults
    # the last-GPU guard keeps at least one alive, so nothing sheds.
    assert result.metrics.shed_count() == 0


def test_random_plan_is_deterministic():
    a = run_with_injector(
        FaultInjector.random_plan(seed=7, duration=30.0, num_faults=5), 7
    )
    b = run_with_injector(
        FaultInjector.random_plan(seed=7, duration=30.0, num_faults=5), 7
    )
    assert a.tokens_generated == b.tokens_generated
    assert a.duration == b.duration


# ---------------------------------------------------------------------------
# GPU slowdown
# ---------------------------------------------------------------------------
def test_slowdown_applies_and_restores():
    # Pack routing ties break toward the highest UUID, so gpu01 is the
    # GPU that actually carries load on a 2-GPU pool.
    spec = FaultSpec(kind=FaultKind.GPU_SLOWDOWN, time=5.0, gpu_id="gpu01",
                     duration=10.0, factor=8.0)
    injector = FaultInjector([spec], seed=0)
    sim = ClusterSimulator(make_engines(2), fault_injector=injector)
    factors = []
    sim.loop.schedule(6.0, lambda now: factors.append(
        sim.scheduler.engines["gpu01"].slowdown_factor))
    result = sim.run(chaos_trace(0, n=60, rate=3.0, duration=20.0))
    assert factors == [8.0], "slowdown not active inside its window"
    assert sim.scheduler.engines["gpu01"].slowdown_factor == 1.0
    assert all(r.state is RequestState.FINISHED for r in result.requests)


def test_slowdown_hurts_latency():
    trace = chaos_trace(0, n=80, rate=4.0, duration=20.0)
    healthy = ClusterSimulator(make_engines(2)).run(trace)
    spec = FaultSpec(kind=FaultKind.GPU_SLOWDOWN, time=2.0, gpu_id="gpu01",
                     duration=15.0, factor=10.0)
    trace2 = chaos_trace(0, n=80, rate=4.0, duration=20.0)
    slowed = ClusterSimulator(
        make_engines(2), fault_injector=FaultInjector([spec])
    ).run(trace2)
    assert slowed.mean_normalized_latency() > healthy.mean_normalized_latency()


# ---------------------------------------------------------------------------
# Adapter load failure
# ---------------------------------------------------------------------------
def test_adapter_load_failure_recovers():
    # ~1 MB/s PCIe: every adapter copy takes many simulated seconds, so a
    # fault at t=1.0 reliably finds copies in flight.
    slow = PcieSpec(name="slow", effective_bandwidth=4e7)
    spec = FaultSpec(kind=FaultKind.ADAPTER_LOAD_FAIL, time=1.0)
    injector = FaultInjector([spec], seed=0)
    sim = ClusterSimulator(make_engines(2, pcie=slow), fault_injector=injector)
    result = sim.run(chaos_trace(0, n=30, rate=2.0, duration=10.0))
    assert injector.injected[0].applied, "no in-flight copy found to fail"
    assert result.metrics.fault_count() == 1
    assert result.metrics.replacement_count() >= 1
    for req in result.requests:
        assert req.state is RequestState.FINISHED
        assert req.num_generated == req.spec.response_len


# ---------------------------------------------------------------------------
# PCIe stall
# ---------------------------------------------------------------------------
def test_pcie_stall_delays_inflight_copy():
    slow = PcieSpec(name="slow", effective_bandwidth=4e7)
    loader = LoraLoader(pcie=slow)
    plan = loader.request_load("lora-a", 4e7, now=0.0)  # ~1 s copy
    before = loader.ready_time("lora-a")
    moved = loader.stall_pcie(0.5, extra=2.0)
    assert moved == ["lora-a"]
    assert loader.ready_time("lora-a") == pytest.approx(before + 2.0)
    assert plan.finish <= loader.ready_time("lora-a")


def test_pcie_stall_cluster_still_finishes():
    slow = PcieSpec(name="slow", effective_bandwidth=4e7)
    spec = FaultSpec(kind=FaultKind.PCIE_STALL, time=1.0, duration=3.0)
    injector = FaultInjector([spec], seed=0)
    sim = ClusterSimulator(make_engines(2, pcie=slow), fault_injector=injector)
    result = sim.run(chaos_trace(0, n=30, rate=2.0, duration=10.0))
    assert result.metrics.fault_count() == 1
    for req in result.requests:
        assert req.state is RequestState.FINISHED


# ---------------------------------------------------------------------------
# Shedding: the only path that may end in FAILED without retries
# ---------------------------------------------------------------------------
def test_total_outage_sheds_with_terminal_state():
    specs = [
        FaultSpec(kind=FaultKind.GPU_CRASH, time=5.0, gpu_id="gpu00"),
        FaultSpec(kind=FaultKind.GPU_CRASH, time=5.0, gpu_id="gpu01"),
    ]
    injector = FaultInjector(specs, seed=0, allow_last_gpu_crash=True)
    sim = ClusterSimulator(make_engines(2), fault_injector=injector)
    result = sim.run(chaos_trace(0, n=60, rate=4.0, duration=20.0))
    assert not sim.scheduler.engines
    assert result.metrics.shed_count() > 0
    for req in result.requests:
        assert req.state in (RequestState.FINISHED, RequestState.FAILED)
        if req.state is RequestState.FAILED:
            assert req.failure_reason is not None
            assert "shed" in req.failure_reason
    assert sim.scheduler.queue_depth == 0, "shed queue must be emptied"


def test_last_gpu_crash_guarded_by_default():
    injector = FaultInjector.crash_at(5.0, seed=0)
    sim = ClusterSimulator(make_engines(1), fault_injector=injector)
    result = sim.run(chaos_trace(0, n=40, rate=3.0, duration=15.0))
    assert not injector.injected[0].applied
    assert result.metrics.fault_count() == 0
    assert all(r.state is RequestState.FINISHED for r in result.requests)


# ---------------------------------------------------------------------------
# Frontend deadlines + bounded retry under faults
# ---------------------------------------------------------------------------
def test_deadline_retry_survives_crash():
    injector = FaultInjector.crash_at(2.0, gpu_id="gpu00", seed=0)
    sim = ClusterSimulator(make_engines(2), fault_injector=injector)
    fe = Frontend(sim)
    handles = [
        fe.submit(f"lora-{i}", prompt_len=32, response_len=16, at_time=0.2 * i,
                  deadline=60.0, max_retries=2)
        for i in range(12)
    ]
    fe.run()
    for h in handles:
        assert h.state is RequestState.FINISHED
        assert len(h.tokens) == 16


def test_deadline_exhaustion_surfaces_failed():
    sim = ClusterSimulator(make_engines(1, max_batch=1))
    fe = Frontend(sim)
    blocker = fe.submit("lora-a", prompt_len=16, response_len=5000, at_time=0.0)
    victim = fe.submit("lora-b", prompt_len=16, response_len=4, at_time=0.5,
                       deadline=1.0, max_retries=2, retry_backoff=0.25)
    fe.run()
    assert victim.failed
    assert victim.state is RequestState.FAILED
    assert victim.retries_used == 2
    assert "deadline" in victim.failure_reason
    assert blocker.state is RequestState.FINISHED


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultKind.GPU_CRASH, time=-1.0)
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultKind.GPU_SLOWDOWN, time=0.0, factor=0.5)
    with pytest.raises(ValueError):
        FaultInjector.random_plan(seed=0, duration=0.0)
