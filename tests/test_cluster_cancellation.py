"""Cancellation lifecycle regression tests.

Three bugs used to live on these paths (each test here failed before the
fix landed):

1. **Crash** — cancelling a request before its simulated arrival left the
   arrival event live; when it fired, ``scheduler.submit`` routed the
   CANCELLED request into ``engine.add_request`` whose ``mark_running``
   raised and killed the whole event loop.
2. **Liveness** — ``GpuEngine.cancel`` frees batch/KvCache capacity, but
   the simulator only drained the FCFS queue when a step reported
   ``finished or evicted``; cancelling the *last running* request stranded
   every queued request forever.
3. **Edge case** — ``PunicaScheduler.consolidate`` / ``scaling_hint``
   computed ``max(...)`` over an empty generator when engines lack
   ``.config`` (test doubles) and raised ValueError.

Plus the full cancellation matrix: cancel before arrival, while
FCFS-queued, while pending on a LoRA load, and mid-decode with a queued
backlog — asserting no crash, no stranded requests, and correct terminal
states.
"""

import pytest

from repro.cluster.frontend import Frontend
from repro.cluster.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    PunicaScheduler,
    SchedulerConfig,
)
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import Request, RequestState
from repro.workloads.trace import RequestSpec


def make_engine(gpu_id="gpu00", max_batch=8):
    return GpuEngine(
        gpu_id,
        SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
        EngineConfig(max_batch_size=max_batch),
    )


def make_frontend(num_gpus=1, max_batch=8):
    engines = [make_engine(f"gpu{i:02d}", max_batch) for i in range(num_gpus)]
    sim = ClusterSimulator(engines)
    return Frontend(sim), sim


# ---------------------------------------------------------------------------
# Regression 1: cancel before the simulated arrival (used to crash the loop)
# ---------------------------------------------------------------------------
class TestCancelBeforeArrival:
    def test_no_crash_and_terminal_state(self):
        fe, _ = make_frontend()
        doomed = fe.submit("lora-a", prompt_len=16, response_len=8, at_time=5.0)
        survivor = fe.submit("lora-b", prompt_len=16, response_len=8, at_time=5.0)
        fe.cancel(doomed.request_id)
        fe.run()  # used to raise RuntimeError from mark_running
        assert doomed.state is RequestState.CANCELLED
        assert doomed.tokens == []
        assert survivor.state is RequestState.FINISHED
        assert len(survivor.tokens) == 8

    def test_scheduler_submit_drops_terminal_requests(self):
        engine = make_engine()
        sched = PunicaScheduler([engine])
        req = Request(
            spec=RequestSpec(
                request_id="r0", lora_id="lora-a", arrival_time=0.0,
                prompt_len=16, response_len=8,
            )
        )
        req.mark_cancelled()
        assert sched.submit(req, now=0.0) is None
        assert sched.queue_depth == 0
        assert not engine.has_request("r0")


# ---------------------------------------------------------------------------
# Regression 2: cancelling the last running request strands the FCFS queue
# ---------------------------------------------------------------------------
class TestCancelDrainsQueue:
    def test_queued_request_runs_after_blocking_cancel(self):
        # One GPU with batch size 1: the long request blocks the queue.
        fe, sim = make_frontend(max_batch=1)
        blocker = fe.submit("lora-a", prompt_len=16, response_len=100_000,
                            at_time=0.0)
        queued = fe.submit("lora-b", prompt_len=16, response_len=4, at_time=0.5)
        # Cancel mid-run, once the blocker is decoding and the other queued.
        sim.loop.schedule(1.0, lambda now: fe.cancel(blocker.request_id))
        end = fe.run()
        assert blocker.state is RequestState.CANCELLED
        # The fix: cancellation kicks a queue drain, so the queued request
        # is admitted and runs to completion instead of being stranded.
        assert queued.state is RequestState.FINISHED
        assert len(queued.tokens) == 4
        assert sim.scheduler.queue_depth == 0
        assert end < 100.0  # the loop terminated promptly, no livelock

    def test_cancel_queued_request_unblocks_head_of_line(self):
        fe, sim = make_frontend(max_batch=1)
        blocker = fe.submit("lora-a", prompt_len=16, response_len=500, at_time=0.0)
        head = fe.submit("lora-b", prompt_len=16, response_len=4, at_time=0.5)
        tail = fe.submit("lora-c", prompt_len=16, response_len=4, at_time=0.6)
        sim.loop.schedule(1.0, lambda now: fe.cancel(head.request_id))
        fe.run()
        assert head.state is RequestState.CANCELLED
        assert blocker.state is RequestState.FINISHED
        assert tail.state is RequestState.FINISHED


# ---------------------------------------------------------------------------
# Regression 3: consolidate/scaling_hint on engines without .config
# ---------------------------------------------------------------------------
class _EngineDouble:
    """Minimal scheduler-facing engine stub with no ``.config``."""

    def __init__(self, gpu_id, working=0):
        self.gpu_id = gpu_id
        self.working_set_size = working
        self.alive = True

    @property
    def is_idle(self):
        return self.working_set_size == 0

    def can_accept(self, request):
        return False

    def all_requests(self):
        return []


class TestConfiglessEngines:
    def test_consolidate_does_not_raise(self):
        sched = PunicaScheduler([_EngineDouble("a", 1), _EngineDouble("b", 2)])
        assert sched.consolidate(now=0.0) == 0  # used to raise ValueError

    def test_scaling_hint_does_not_raise(self):
        sched = PunicaScheduler([_EngineDouble("a"), _EngineDouble("b")])
        assert sched.scaling_hint() in ("scale-up", "scale-down", "hold")

    def test_fallback_value_is_paper_default(self):
        sched = PunicaScheduler([_EngineDouble("a")])
        assert sched._max_batch_size() == DEFAULT_MAX_BATCH_SIZE

    def test_mixed_pool_uses_real_configs(self):
        sched = PunicaScheduler([make_engine("real", max_batch=4),
                                 _EngineDouble("double")])
        assert sched._max_batch_size() == 4


# ---------------------------------------------------------------------------
# The cancellation lifecycle matrix
# ---------------------------------------------------------------------------
class TestCancellationMatrix:
    def test_cancel_before_arrival(self):
        fe, sim = make_frontend()
        h = fe.submit("lora-a", prompt_len=16, response_len=8, at_time=3.0)
        fe.cancel(h.request_id)
        fe.run()
        assert h.state is RequestState.CANCELLED
        assert sim.scheduler.queue_depth == 0

    def test_cancel_while_fcfs_queued(self):
        fe, sim = make_frontend(max_batch=1)
        blocker = fe.submit("lora-a", prompt_len=16, response_len=500, at_time=0.0)
        queued = fe.submit("lora-b", prompt_len=16, response_len=8, at_time=0.5)
        sim.loop.schedule(1.0, lambda now: fe.cancel(queued.request_id))
        fe.run()
        assert queued.state is RequestState.CANCELLED
        assert queued.tokens == []
        assert blocker.state is RequestState.FINISHED
        assert sim.scheduler.queue_depth == 0

    def test_cancel_while_pending_on_lora_load(self):
        # Throttle PCIe so the adapter copy is still in flight at cancel
        # time: the request sits in the engine's pending list, never
        # prefilled.
        from repro.hw.pcie import PcieSpec
        from repro.runtime.loader import LoraLoader

        slow_pcie = PcieSpec(name="slow", effective_bandwidth=1e6)  # ~1 MB/s
        engine = GpuEngine(
            "gpu00",
            SimulatedBackend(LLAMA2_7B, step_overhead=0.0),
            EngineConfig(max_batch_size=8),
            loader=LoraLoader(pcie=slow_pcie),
        )
        sim = ClusterSimulator([engine])
        fe = Frontend(sim)
        h = fe.submit("lora-a", prompt_len=16, response_len=8, at_time=0.0)
        sim.loop.schedule(0.1, lambda now: fe.cancel(h.request_id))
        end = fe.run()
        assert h.state is RequestState.CANCELLED
        assert h.tokens == []
        assert engine.is_idle
        # The loop must not wait out the (multi-second) copy for a request
        # nobody wants anymore; it may observe the armed wake-up but no
        # token is ever generated.
        assert end < 120.0

    def test_cancel_mid_decode_with_backlog(self):
        fe, sim = make_frontend(max_batch=2)
        victims = [
            fe.submit(f"lora-{i}", prompt_len=16, response_len=200, at_time=0.0)
            for i in range(2)
        ]
        backlog = [
            fe.submit(f"lora-b{i}", prompt_len=16, response_len=4, at_time=0.5)
            for i in range(3)
        ]
        sim.loop.schedule(1.0, lambda now: fe.cancel(victims[0].request_id))
        fe.run()
        assert victims[0].state is RequestState.CANCELLED
        assert 0 < len(victims[0].tokens) < 200  # was genuinely mid-decode
        assert victims[1].state is RequestState.FINISHED
        for h in backlog:
            assert h.state is RequestState.FINISHED, "backlog request stranded"
            assert len(h.tokens) == 4
        assert sim.scheduler.queue_depth == 0

    def test_double_cancel_is_idempotent(self):
        fe, _ = make_frontend()
        h = fe.submit("lora-a", prompt_len=16, response_len=8, at_time=2.0)
        fe.cancel(h.request_id)
        fe.cancel(h.request_id)  # no-op, no raise
        fe.run()
        assert h.state is RequestState.CANCELLED
