"""Tests for the roofline model helpers."""

import pytest

from repro.hw.roofline import (
    RooflinePoint,
    ridge_point,
    roofline_bound,
    roofline_latency,
    roofline_series,
)
from repro.hw.spec import A100_80G


class TestRooflineBound:
    def test_memory_bound_region(self):
        # Below the ridge, attainable = intensity * bandwidth.
        x = 1.0
        assert roofline_bound(A100_80G, x) == pytest.approx(x * A100_80G.hbm_bandwidth)

    def test_compute_bound_region(self):
        x = 10_000.0
        assert roofline_bound(A100_80G, x) == A100_80G.peak_fp16_flops

    def test_ridge_continuity(self):
        r = ridge_point(A100_80G)
        assert roofline_bound(A100_80G, r) == pytest.approx(A100_80G.peak_fp16_flops)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            roofline_bound(A100_80G, -1.0)


class TestRooflineLatency:
    def test_memory_bound_kernel(self):
        # 1 MB moved, negligible flops.
        t = roofline_latency(A100_80G, flop=1.0, io_bytes=1e6)
        assert t == pytest.approx(1e6 / A100_80G.hbm_bandwidth)

    def test_compute_bound_kernel(self):
        t = roofline_latency(A100_80G, flop=1e12, io_bytes=1.0)
        assert t == pytest.approx(1e12 / A100_80G.peak_fp16_flops)

    def test_zero_zero(self):
        assert roofline_latency(A100_80G, 0.0, 0.0) == 0.0


class TestRooflinePoint:
    def test_derived_quantities(self):
        p = RooflinePoint(label="sgmv", flop=2e9, io_bytes=1e6, latency=1e-4)
        assert p.arithmetic_intensity == pytest.approx(2000.0)
        assert p.achieved_flops == pytest.approx(2e13)

    def test_achieved_below_roof_when_latency_above_ideal(self):
        flop, io = 2e9, 1e6
        ideal = roofline_latency(A100_80G, flop, io)
        p = RooflinePoint(label="k", flop=flop, io_bytes=io, latency=ideal * 2)
        assert p.achieved_flops <= roofline_bound(A100_80G, p.arithmetic_intensity)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            RooflinePoint(label="bad", flop=1.0, io_bytes=1.0, latency=0.0)


class TestRooflineSeries:
    def test_series_shape_and_monotonicity(self):
        xs = [0.1, 1.0, 10.0, 100.0, 1000.0]
        series = roofline_series(A100_80G, xs)
        assert [x for x, _ in series] == xs
        ys = [y for _, y in series]
        assert ys == sorted(ys)
