"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.segments
import repro.utils.tables
import repro.utils.units

DOCTEST_MODULES = [
    repro.core.segments,
    repro.utils.units,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert attempted > 0, f"{module.__name__} has no doctests"
    assert failures == 0
