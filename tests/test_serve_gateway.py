"""Gateway tests: admission, lifecycle, tracing and metrics parity.

The :class:`~repro.serve.gateway.ServeGateway` is driven here directly on
the simulator's virtual clock — no asyncio anywhere — which is exactly how
the deterministic ``serve`` golden scenario runs it. The async server adds
transport on top; everything semantic lives at this layer.
"""

from __future__ import annotations

import pytest

from repro.cluster.frontend import Frontend
from repro.cluster.scheduler import SchedulerConfig
from repro.cluster.simulator import ClusterSimulator
from repro.models.config import LLAMA2_7B
from repro.obs.tracer import EventKind, Tracer
from repro.runtime.backend import SimulatedBackend
from repro.runtime.engine import EngineConfig, GpuEngine
from repro.runtime.request import RequestState
from repro.serve.gateway import ServeGateway
from repro.serve.limits import AdmissionController, Decision, TenantPolicy
from repro.serve.metrics import ServeMetrics


def make_gateway(
    policy: "TenantPolicy | None" = None,
    max_total_inflight: "int | None" = None,
    num_gpus: int = 2,
) -> ServeGateway:
    tracer = Tracer()
    sim = ClusterSimulator(
        [
            GpuEngine(
                f"gpu{i:02d}", SimulatedBackend(LLAMA2_7B),
                EngineConfig(max_batch_size=8),
            )
            for i in range(num_gpus)
        ],
        SchedulerConfig(),
        tracer=tracer,
    )
    return ServeGateway(
        Frontend(sim),
        AdmissionController(
            default_policy=policy
            or TenantPolicy(rate=100.0, burst=50.0, max_inflight=32),
            max_total_inflight=max_total_inflight,
        ),
        metrics=ServeMetrics(),
        tracer=tracer,
    )


def open_one(gateway, rid="r0", tenant="t0", now=0.0, response_len=4, **kwargs):
    return gateway.open(
        tenant=tenant, lora_id="m0", prompt_len=8,
        response_len=response_len, now=now, request_id=rid, **kwargs,
    )


class TestLifecycle:
    def test_admitted_stream_finishes_and_finalizes(self):
        gateway = make_gateway()
        stream, decision = open_one(gateway)
        assert decision is Decision.ADMIT
        gateway.frontend.run()
        done = gateway.poll(gateway.simulator.now)
        assert done == [stream]
        assert stream.handle.state is RequestState.FINISHED
        assert not gateway.open_streams()
        assert gateway.controller.total_inflight == 0

    def test_tokens_stream_through_on_token_callback(self):
        gateway = make_gateway()
        seen = []
        stream, _ = open_one(
            gateway, response_len=5,
            on_token=lambda rid, tok, t: seen.append((rid, tok, t)),
        )
        gateway.frontend.run()
        gateway.poll(gateway.simulator.now)
        assert len(seen) == 5
        assert all(rid == "r0" for rid, _, _ in seen)
        times = [t for _, _, t in seen]
        assert times == sorted(times)

    def test_client_disconnect_reaches_engine_as_cancel(self):
        gateway = make_gateway()
        stream, _ = open_one(gateway, response_len=32)
        sim = gateway.simulator
        sim.loop.run(until=0.2)  # mid-stream
        assert not stream.handle.is_done()
        gateway.client_close("r0", sim.now)
        assert stream.handle.state is RequestState.CANCELLED
        cancels = gateway.tracer.by_kind(EventKind.CANCEL)
        assert len(cancels) == 1
        assert cancels[0].request_id == "r0"
        assert cancels[0].attrs["reason"] == "disconnect"
        # The slot is released and the gateway forgot the stream.
        assert gateway.controller.total_inflight == 0
        assert not gateway.open_streams()

    def test_shed_never_reaches_the_scheduler(self):
        gateway = make_gateway(
            policy=TenantPolicy(rate=1.0, burst=1.0, max_inflight=8),
        )
        _, first = open_one(gateway, rid="ok")
        stream, decision = open_one(gateway, rid="no")
        assert first is Decision.ADMIT
        assert decision is Decision.RATE_LIMITED
        assert stream is None
        submits = gateway.tracer.by_kind(EventKind.SUBMIT)
        gateway.frontend.run()
        submits = gateway.tracer.by_kind(EventKind.SUBMIT)
        assert [e.request_id for e in submits] == ["ok"]

    def test_drain_cancels_all_open_streams(self):
        gateway = make_gateway()
        for i in range(3):
            open_one(gateway, rid=f"r{i}", response_len=64)
        closed = gateway.drain(0.0)
        assert len(closed) == 3
        assert gateway.controller.total_inflight == 0
        assert all(s.cancelled for s in closed)

    def test_double_close_is_idempotent(self):
        gateway = make_gateway()
        open_one(gateway, response_len=32)
        gateway.client_close("r0", 0.1)
        gateway.client_close("r0", 0.2)  # no KeyError, no double release
        assert gateway.controller.total_inflight == 0


class TestConnectionTraceEvents:
    def test_connection_events_carry_no_request_id(self):
        """CONNECT/DISCONNECT (and door SHED) must not join request
        timelines — the breakdown walker requires timelines to start at
        SUBMIT, and a shed connection has no request at all."""
        gateway = make_gateway(
            policy=TenantPolicy(rate=1.0, burst=1.0, max_inflight=8),
        )
        open_one(gateway, rid="ok")
        open_one(gateway, rid="no")  # shed
        gateway.frontend.run()
        gateway.poll(gateway.simulator.now)
        for kind in (EventKind.CONNECT, EventKind.DISCONNECT):
            events = gateway.tracer.by_kind(kind)
            assert events and all(e.request_id is None for e in events)
            assert all("conn" in e.attrs and "tenant" in e.attrs for e in events)
        door_sheds = [
            e for e in gateway.tracer.by_kind(EventKind.SHED)
            if e.request_id is None
        ]
        assert len(door_sheds) == 1
        assert door_sheds[0].attrs["reason"] == "rate_limited"

    def test_disconnect_causes(self):
        gateway = make_gateway(
            policy=TenantPolicy(rate=1.0, burst=2.0, max_inflight=1),
        )
        open_one(gateway, rid="served", response_len=2)
        open_one(gateway, rid="shed")  # max_inflight=1 -> queue_full
        gateway.frontend.run()
        gateway.poll(gateway.simulator.now)
        causes = {
            e.attrs["conn"]: e.attrs["cause"]
            for e in gateway.tracer.by_kind(EventKind.DISCONNECT)
        }
        assert causes == {"served": "served", "shed": "shed"}

    def test_client_disconnect_cause(self):
        gateway = make_gateway()
        open_one(gateway, response_len=64)
        gateway.client_close("r0", 0.05)
        causes = [
            e.attrs["cause"]
            for e in gateway.tracer.by_kind(EventKind.DISCONNECT)
        ]
        assert causes == ["client"]


class TestServeMetricsParity:
    """Every serve counter is observable identically through the JSON and
    Prometheus exports of the unified registry (the satellite contract)."""

    def run_mixed_load(self) -> ServeGateway:
        gateway = make_gateway(
            policy=TenantPolicy(rate=2.0, burst=2.0, max_inflight=8),
        )
        open_one(gateway, rid="a0", tenant="a", response_len=2)
        open_one(gateway, rid="a1", tenant="a", response_len=32)
        open_one(gateway, rid="a2", tenant="a")  # rate-limited
        open_one(gateway, rid="b0", tenant="b", response_len=2)
        gateway.client_close("a1", 0.1)
        gateway.frontend.run()
        gateway.poll(gateway.simulator.now)
        return gateway

    def test_counters_match_lifecycle(self):
        gateway = self.run_mixed_load()
        reg = gateway.metrics.registry
        assert reg.get("serve_connections_total").total() == 4
        assert reg.get("serve_requests_admitted_total").value(tenant="a") == 2
        assert reg.get("serve_requests_admitted_total").value(tenant="b") == 1
        assert reg.get("serve_requests_shed_total").value(
            tenant="a", reason="rate_limited"
        ) == 1
        assert reg.get("serve_requests_finished_total").total() == 2
        assert reg.get("serve_client_cancels_total").value(tenant="a") == 1
        assert reg.get("serve_tokens_streamed_total").total() > 0
        assert reg.get("serve_active_connections").total() == 0
        assert reg.get("serve_active_streams").total() == 0

    def test_json_and_prometheus_agree(self):
        gateway = self.run_mixed_load()
        reg = gateway.metrics.registry
        snapshot = reg.to_json()
        text = reg.render_prometheus()
        for name in (
            "serve_connections_total",
            "serve_requests_admitted_total",
            "serve_requests_shed_total",
            "serve_requests_finished_total",
            "serve_client_cancels_total",
            "serve_tokens_streamed_total",
            "serve_active_connections",
            "serve_active_streams",
            "serve_ttfb_seconds",
        ):
            qualified = f"repro_{name}"
            assert qualified in snapshot, name
            assert qualified in text, name
        # Spot-check one labeled sample end to end.
        assert 'repro_serve_requests_shed_total{tenant="a",reason="rate_limited"} 1' \
            in text.replace(".0 ", " ").replace(".0\n", "\n")

    def test_ttfb_histogram_observes_each_first_token(self):
        gateway = self.run_mixed_load()
        hist = gateway.metrics.registry.get("serve_ttfb_seconds")
        # a0, b0 finished; a1 cancelled after its first token window —
        # every stream that produced >= 1 token contributes exactly one
        # TTFB observation.
        streams_with_tokens = 2 + (1 if hist.to_json_obj()["count"] == 3 else 0)
        assert hist.to_json_obj()["count"] in (2, 3)
        assert hist.to_json_obj()["count"] == streams_with_tokens

    def test_idle_gateway_still_exports_schema(self):
        gateway = make_gateway()
        text = gateway.metrics.registry.render_prometheus()
        for name in ("serve_connections_total", "serve_ttfb_seconds"):
            assert f"repro_{name}" in text


class TestOverload:
    def test_global_bound_sheds_overloaded(self):
        gateway = make_gateway(max_total_inflight=2)
        assert open_one(gateway, rid="r0", tenant="a")[1] is Decision.ADMIT
        assert open_one(gateway, rid="r1", tenant="b")[1] is Decision.ADMIT
        stream, decision = open_one(gateway, rid="r2", tenant="c")
        assert stream is None and decision is Decision.OVERLOADED
        shed = gateway.metrics.registry.get("serve_requests_shed_total")
        assert shed.value(tenant="c", reason="overloaded") == 1
