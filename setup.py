"""Legacy setup shim: this environment lacks the ``wheel`` package, so the
PEP 660 editable-install path is unavailable; ``pip install -e . --no-use-pep517``
uses this file instead. All real metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
